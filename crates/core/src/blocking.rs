//! Spatial blocking patterns and the [`BlockGrid`] partition.
//!
//! The paper (§II-D, Figure 4) defines two patterns for multi-layer fusion:
//!
//! * **fixed blocking** — the block *size* is constant through layers; after
//!   pooling, adjacent shrunken blocks merge into one full-size block, so
//!   the number of blocks drops and the receptive field of a block grows;
//! * **hierarchical blocking** — the block *count* is constant; the network
//!   splits into independent spatial sub-networks.
//!
//! Rectangular (`F28×56`, `H1×4`) and irregular blocks (fixed 28 on a 41×41
//! map → 28/13 splits, §II-F) are both supported.

use std::fmt;

use bconv_tensor::TensorError;

/// A blocking pattern in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockingPattern {
    /// `F(th×tw)` — constant block size `(th, tw)` through layers. The last
    /// row/column of blocks may be smaller when the map size is not a
    /// multiple of the block size (the paper's "irregular" fixed blocking).
    Fixed {
        /// Block height.
        th: usize,
        /// Block width.
        tw: usize,
    },
    /// `H(gh×gw)` — constant block *count* `(gh, gw)`; block sizes shrink
    /// as resolution drops. When the map is not divisible the leading
    /// blocks take the extra pixels.
    Hierarchical {
        /// Number of block rows.
        gh: usize,
        /// Number of block columns.
        gw: usize,
    },
}

impl BlockingPattern {
    /// Square fixed blocking `F(t×t)`.
    pub fn fixed(t: usize) -> Self {
        Self::Fixed { th: t, tw: t }
    }

    /// Square hierarchical blocking `H(g×g)`.
    pub fn hierarchical(g: usize) -> Self {
        Self::Hierarchical { gh: g, gw: g }
    }
}

impl fmt::Display for BlockingPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fixed { th, tw } if th == tw => write!(f, "F{th}"),
            Self::Fixed { th, tw } => write!(f, "F{th}x{tw}"),
            Self::Hierarchical { gh, gw } if gh == gw => write!(f, "H{gh}x{gh}"),
            Self::Hierarchical { gh, gw } => write!(f, "H{gh}x{gw}"),
        }
    }
}

/// One spatial block: origin `(h0, w0)`, extent `(bh, bw)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Block {
    /// Row of the top-left pixel.
    pub h0: usize,
    /// Column of the top-left pixel.
    pub w0: usize,
    /// Block height.
    pub bh: usize,
    /// Block width.
    pub bw: usize,
}

impl Block {
    /// Number of pixels in the block.
    pub fn area(&self) -> usize {
        self.bh * self.bw
    }
}

/// A partition of an `h × w` feature map into non-overlapping blocks that
/// exactly tile the map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockGrid {
    h: usize,
    w: usize,
    rows: Vec<(usize, usize)>,
    cols: Vec<(usize, usize)>,
}

/// Splits `len` into segments of size `seg` with a smaller tail segment.
fn fixed_segments(len: usize, seg: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < len {
        let size = seg.min(len - start);
        out.push((start, size));
        start += size;
    }
    out
}

/// Splits `len` into `parts` segments as evenly as possible (leading
/// segments take the remainder).
fn even_segments(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push((start, size));
        start += size;
    }
    out
}

impl BlockGrid {
    /// Builds the grid a pattern induces on an `h × w` map.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] if the pattern is
    /// degenerate (zero block size/count) or a hierarchical pattern asks for
    /// more blocks than pixels.
    ///
    /// # Examples
    ///
    /// ```
    /// use bconv_core::blocking::{BlockGrid, BlockingPattern};
    /// // Figure 3: an 8x8 map under 2x2 hierarchical blocking -> four 4x4 blocks.
    /// let grid = BlockGrid::from_pattern(8, 8, BlockingPattern::hierarchical(2))?;
    /// assert_eq!(grid.num_blocks(), 4);
    /// assert!(grid.blocks().all(|b| b.bh == 4 && b.bw == 4));
    /// # Ok::<(), bconv_tensor::TensorError>(())
    /// ```
    pub fn from_pattern(h: usize, w: usize, pattern: BlockingPattern) -> Result<Self, TensorError> {
        if h == 0 || w == 0 {
            return Err(TensorError::invalid("cannot block an empty feature map"));
        }
        let (rows, cols) = match pattern {
            BlockingPattern::Fixed { th, tw } => {
                if th == 0 || tw == 0 {
                    return Err(TensorError::invalid("fixed block size must be non-zero"));
                }
                (fixed_segments(h, th), fixed_segments(w, tw))
            }
            BlockingPattern::Hierarchical { gh, gw } => {
                if gh == 0 || gw == 0 {
                    return Err(TensorError::invalid("block count must be non-zero"));
                }
                if gh > h || gw > w {
                    return Err(TensorError::invalid(format!(
                        "cannot split ({h},{w}) into ({gh},{gw}) blocks"
                    )));
                }
                (even_segments(h, gh), even_segments(w, gw))
            }
        };
        Ok(Self { h, w, rows, cols })
    }

    /// A grid with a single block covering the whole map (i.e. no blocking).
    pub fn single(h: usize, w: usize) -> Self {
        Self { h, w, rows: vec![(0, h)], cols: vec![(0, w)] }
    }

    /// Builds a grid from explicit row/column segment lists.
    ///
    /// Segments must tile `[0, h)` and `[0, w)` contiguously. This is how
    /// the paper's irregular 41×41 → {28, 13} fixed split (§II-F) and the
    /// per-layer `[Tr, Tc]` configurations of Table VI are expressed.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] if segments do not tile
    /// the map contiguously.
    pub fn from_segments(
        h: usize,
        w: usize,
        rows: Vec<(usize, usize)>,
        cols: Vec<(usize, usize)>,
    ) -> Result<Self, TensorError> {
        for (axis, len, segs) in [("rows", h, &rows), ("cols", w, &cols)] {
            let mut cursor = 0;
            for &(start, size) in segs.iter() {
                if start != cursor || size == 0 {
                    return Err(TensorError::invalid(format!(
                        "{axis} segments must tile [0,{len}) contiguously"
                    )));
                }
                cursor += size;
            }
            if cursor != len {
                return Err(TensorError::invalid(format!(
                    "{axis} segments cover {cursor} of {len}"
                )));
            }
        }
        Ok(Self { h, w, rows, cols })
    }

    /// Feature-map height this grid tiles.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Feature-map width this grid tiles.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Number of block rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of block columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Total block count.
    pub fn num_blocks(&self) -> usize {
        self.rows.len() * self.cols.len()
    }

    /// Row segments as `(start, size)` pairs.
    pub fn row_segments(&self) -> &[(usize, usize)] {
        &self.rows
    }

    /// Column segments as `(start, size)` pairs.
    pub fn col_segments(&self) -> &[(usize, usize)] {
        &self.cols
    }

    /// The block at grid position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of range.
    pub fn block(&self, row: usize, col: usize) -> Block {
        let (h0, bh) = self.rows[row];
        let (w0, bw) = self.cols[col];
        Block { h0, w0, bh, bw }
    }

    /// Iterates over blocks in row-major order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        self.rows.iter().flat_map(move |&(h0, bh)| {
            self.cols.iter().map(move |&(w0, bw)| Block { h0, w0, bh, bw })
        })
    }

    /// Largest block area in the grid — the quantity an accelerator's
    /// intermediate buffer must be sized for.
    pub fn max_block_area(&self) -> usize {
        self.blocks().map(|b| b.area()).max().unwrap_or(0)
    }

    /// The grid induced on the output of a stride-`s` spatial reduction
    /// (stride-s convolution or s×s pooling). Each segment shrinks by `s`;
    /// this is exact when every segment start and size is divisible by `s`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] if any segment boundary is
    /// not aligned to `s` (the blocks would no longer be independent).
    pub fn downscale(&self, s: usize) -> Result<Self, TensorError> {
        if s == 0 {
            return Err(TensorError::invalid("downscale stride must be non-zero"));
        }
        let scale = |segs: &[(usize, usize)]| -> Result<Vec<(usize, usize)>, TensorError> {
            segs.iter()
                .map(|&(start, size)| {
                    if start % s != 0 || size % s != 0 {
                        Err(TensorError::invalid(format!(
                            "segment ({start},{size}) not divisible by stride {s}"
                        )))
                    } else {
                        Ok((start / s, size / s))
                    }
                })
                .collect()
        };
        Ok(Self {
            h: self.h / s,
            w: self.w / s,
            rows: scale(&self.rows)?,
            cols: scale(&self.cols)?,
        })
    }

    /// Merges every `m × m` group of adjacent blocks into one — the
    /// fixed-blocking "splice after pooling" step of Figure 4(a).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] if the block rows/columns
    /// are not divisible by `m`.
    pub fn merge(&self, m: usize) -> Result<Self, TensorError> {
        if m == 0 || !self.rows.len().is_multiple_of(m) || !self.cols.len().is_multiple_of(m) {
            return Err(TensorError::invalid(format!(
                "cannot merge {}x{} blocks in groups of {m}",
                self.rows.len(),
                self.cols.len()
            )));
        }
        let merge_segs = |segs: &[(usize, usize)]| {
            segs.chunks(m)
                .map(|chunk| {
                    let start = chunk[0].0;
                    let size = chunk.iter().map(|&(_, s)| s).sum();
                    (start, size)
                })
                .collect()
        };
        Ok(Self {
            h: self.h,
            w: self.w,
            rows: merge_segs(&self.rows),
            cols: merge_segs(&self.cols),
        })
    }
}

impl fmt::Display for BlockGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BlockGrid({}x{} -> {}x{} blocks)",
            self.h,
            self.w,
            self.rows.len(),
            self.cols.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_even_split() {
        let g = BlockGrid::from_pattern(8, 8, BlockingPattern::hierarchical(2)).unwrap();
        assert_eq!(g.num_blocks(), 4);
        assert_eq!(g.block(1, 1), Block { h0: 4, w0: 4, bh: 4, bw: 4 });
    }

    #[test]
    fn hierarchical_uneven_split_gives_leading_blocks_extra() {
        // Paper §II-F: 41x41 under H2x2 -> "four blocks of the same size"
        // is only possible as 21/20.
        let g = BlockGrid::from_pattern(41, 41, BlockingPattern::hierarchical(2)).unwrap();
        assert_eq!(g.row_segments(), &[(0, 21), (21, 20)]);
    }

    #[test]
    fn fixed_irregular_split_matches_paper_vdsr_case() {
        // Paper §II-F: fixed blocking partitions 41x41 into 28x28, 28x13,
        // 13x28 and 13x13.
        let g = BlockGrid::from_pattern(41, 41, BlockingPattern::fixed(28)).unwrap();
        let sizes: Vec<(usize, usize)> = g.blocks().map(|b| (b.bh, b.bw)).collect();
        assert_eq!(sizes, vec![(28, 28), (28, 13), (13, 28), (13, 13)]);
    }

    #[test]
    fn rectangular_patterns() {
        // F28x56 and H1x4 from Table II.
        let g = BlockGrid::from_pattern(56, 56, BlockingPattern::Fixed { th: 28, tw: 56 }).unwrap();
        assert_eq!(g.num_blocks(), 2);
        let g = BlockGrid::from_pattern(56, 56, BlockingPattern::Hierarchical { gh: 1, gw: 4 })
            .unwrap();
        assert_eq!(g.num_rows(), 1);
        assert_eq!(g.num_cols(), 4);
    }

    #[test]
    fn blocks_tile_the_map_exactly() {
        for pattern in [
            BlockingPattern::fixed(5),
            BlockingPattern::fixed(7),
            BlockingPattern::hierarchical(3),
            BlockingPattern::Hierarchical { gh: 2, gw: 5 },
        ] {
            let g = BlockGrid::from_pattern(17, 23, pattern).unwrap();
            let covered: usize = g.blocks().map(|b| b.area()).sum();
            assert_eq!(covered, 17 * 23, "pattern {pattern}");
        }
    }

    #[test]
    fn downscale_after_pooling() {
        let g = BlockGrid::from_pattern(8, 8, BlockingPattern::hierarchical(2)).unwrap();
        let d = g.downscale(2).unwrap();
        assert_eq!(d.h(), 4);
        assert_eq!(d.block(1, 1), Block { h0: 2, w0: 2, bh: 2, bw: 2 });
        // Misaligned segments are rejected.
        let odd = BlockGrid::from_pattern(9, 9, BlockingPattern::hierarchical(3)).unwrap();
        assert!(odd.downscale(2).is_err());
    }

    #[test]
    fn merge_implements_fixed_blocking_splice() {
        // Figure 4(a): after pooling, 4 quarter-size blocks splice into one.
        let g = BlockGrid::from_pattern(8, 8, BlockingPattern::fixed(4)).unwrap();
        let pooled = g.downscale(2).unwrap(); // 4x4 map, 2x2 blocks of 2x2
        let merged = pooled.merge(2).unwrap();
        assert_eq!(merged.num_blocks(), 1);
        assert_eq!(merged.block(0, 0), Block { h0: 0, w0: 0, bh: 4, bw: 4 });
    }

    #[test]
    fn from_segments_validates_tiling() {
        assert!(BlockGrid::from_segments(8, 8, vec![(0, 4), (4, 4)], vec![(0, 8)]).is_ok());
        assert!(BlockGrid::from_segments(8, 8, vec![(0, 4), (5, 3)], vec![(0, 8)]).is_err());
        assert!(BlockGrid::from_segments(8, 8, vec![(0, 4)], vec![(0, 8)]).is_err());
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(BlockingPattern::fixed(28).to_string(), "F28");
        assert_eq!(BlockingPattern::Fixed { th: 28, tw: 56 }.to_string(), "F28x56");
        assert_eq!(BlockingPattern::hierarchical(4).to_string(), "H4x4");
        assert_eq!(BlockingPattern::Hierarchical { gh: 1, gw: 4 }.to_string(), "H1x4");
    }

    #[test]
    fn degenerate_patterns_rejected() {
        assert!(BlockGrid::from_pattern(8, 8, BlockingPattern::fixed(0)).is_err());
        assert!(BlockGrid::from_pattern(8, 8, BlockingPattern::hierarchical(0)).is_err());
        assert!(BlockGrid::from_pattern(2, 2, BlockingPattern::hierarchical(3)).is_err());
        assert!(BlockGrid::from_pattern(0, 8, BlockingPattern::fixed(2)).is_err());
    }

    #[test]
    fn max_block_area_tracks_largest_block() {
        let g = BlockGrid::from_pattern(41, 41, BlockingPattern::fixed(28)).unwrap();
        assert_eq!(g.max_block_area(), 28 * 28);
    }
}
