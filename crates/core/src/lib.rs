//! Block convolution — the primary contribution of *"Block Convolution:
//! Towards Memory-Efficient Inference of Large-Scale CNNs on FPGA"*
//! (DATE 2018 / arXiv:2105.08937).
//!
//! Conventional spatial tiling couples adjacent tiles at their boundaries,
//! so consecutive conv layers cannot be fused without buffering entire
//! intermediate feature maps off-chip. Block convolution removes the
//! coupling: the feature map is split into independent blocks
//! ([`blocking::BlockGrid`]), each block is padded *locally*
//! ([`padding_solver`], the paper's Equation 2) and convolved on its own
//! ([`BlockConv2d`]), and the results are concatenated. Consecutive layers
//! then fuse block-by-block ([`fusion::FusedChain`]) with zero off-chip
//! transfer of intermediate results.
//!
//! # Quick start
//!
//! ```
//! use bconv_core::{BlockConv2d, blocking::BlockingPattern};
//! use bconv_tensor::{PadMode, Tensor, conv::{Conv2d, ConvGeom}};
//!
//! # fn main() -> Result<(), bconv_tensor::TensorError> {
//! // The paper's Figure 3: an 8x8x3 input under 2x2 blocking.
//! let conv = Conv2d::identity_like(3, 3, ConvGeom::same(3))?;
//! let bconv = BlockConv2d::from_pattern(
//!     conv, 8, 8, BlockingPattern::hierarchical(2), PadMode::Zero)?;
//! let out = bconv.forward(&Tensor::filled([1, 3, 8, 8], 1.0))?;
//! assert_eq!(out.shape().dims(), [1, 3, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod block_conv;
pub mod blocking;
pub mod fusion;
pub mod overlap;
pub mod padding_solver;
pub mod plan;

pub use block_conv::{BlockConv2d, BlockConvScratch};
pub use blocking::{Block, BlockGrid, BlockingPattern};
pub use fusion::{
    BlockScratch, ChainOp, FusedChain, FusedPipeline, MemStats, PipelineScratch, PlannedOp,
};
pub use plan::{LayerBlocking, NetworkPlan};
