//! The block convolution operator: split → block-pad → convolve → concat.
//!
//! Paper §II-C: the feature map is partitioned by a [`BlockGrid`]; each
//! block is padded *locally* (so its computation depends on nothing outside
//! the block) and convolved; the per-block outputs are concatenated.
//! FLOPs are identical to the conventional convolution; only pixels whose
//! receptive field crosses a block boundary can differ.

use std::sync::Arc;

use bconv_tensor::conv::Conv2d;
use bconv_tensor::kernel::{ConvScratch, KernelKind, KernelPolicy, PackedWeights};
use bconv_tensor::pad::{pad2d_asym_into, PadMode};
use bconv_tensor::{Tensor, TensorError};

use crate::blocking::{BlockGrid, BlockingPattern};
use crate::padding_solver::{plan_axis, AxisPlan};

/// A planned block convolution: a dense convolution plus a block grid, the
/// per-block padding schedule derived from the paper's Equation 2, a
/// block-padding mode, and the conv kernel the blocks execute through.
///
/// The convolution weights are held behind an [`Arc`], shared with
/// whoever planned the block convolution (e.g. a `bconv-graph` `Graph`
/// node) — planning never deep-clones weights. Executors that keep a plan
/// around call [`with_packed_weights`](Self::with_packed_weights) once at
/// build time to add a panel-major packed copy for the GEMM kernel;
/// planning itself never packs (cost-model trial walks plan thousands of
/// candidates and quantized chains use their own integer packing).
#[derive(Debug, Clone)]
pub struct BlockConv2d {
    conv: Arc<Conv2d>,
    grid: BlockGrid,
    rows: AxisPlan,
    cols: AxisPlan,
    pad_mode: PadMode,
    kernel: KernelKind,
    packed: Option<Arc<PackedWeights>>,
}

/// Reusable temporaries for per-block convolution: the padded block and
/// the kernel's own scratch. One per worker thread.
#[derive(Debug, Default)]
pub struct BlockConvScratch {
    padded: Tensor,
    conv: ConvScratch,
}

impl BlockConvScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BlockConv2d {
    /// Plans a block convolution for inputs tiled by `grid`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when Equation 2 has no
    /// solution for the grid (e.g. a strided kernel with misaligned
    /// segments).
    ///
    /// # Examples
    ///
    /// ```
    /// use bconv_core::{BlockConv2d, blocking::{BlockGrid, BlockingPattern}};
    /// use bconv_tensor::{Tensor, PadMode, conv::{Conv2d, ConvGeom}};
    ///
    /// # fn main() -> Result<(), bconv_tensor::TensorError> {
    /// // Figure 3: 8x8x3 input, 3x3x3 filter, 2x2 blocks.
    /// let conv = Conv2d::identity_like(3, 3, ConvGeom::same(3))?;
    /// let grid = BlockGrid::from_pattern(8, 8, bconv_core::blocking::BlockingPattern::hierarchical(2))?;
    /// let bconv = BlockConv2d::plan(conv, grid, PadMode::Zero)?;
    /// let input = Tensor::filled([1, 3, 8, 8], 1.0);
    /// let out = bconv.forward(&input)?;
    /// assert_eq!(out.shape().dims(), [1, 3, 8, 8]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn plan(
        conv: impl Into<Arc<Conv2d>>,
        grid: BlockGrid,
        pad_mode: PadMode,
    ) -> Result<Self, TensorError> {
        Self::plan_with_kernel(conv, grid, pad_mode, KernelPolicy::default())
    }

    /// [`plan`](Self::plan) with an explicit [`KernelPolicy`] deciding how
    /// each block is convolved (direct loop vs im2col+GEMM).
    ///
    /// # Errors
    ///
    /// See [`BlockConv2d::plan`].
    pub fn plan_with_kernel(
        conv: impl Into<Arc<Conv2d>>,
        grid: BlockGrid,
        pad_mode: PadMode,
        policy: KernelPolicy,
    ) -> Result<Self, TensorError> {
        let conv = conv.into();
        let g = conv.geom();
        let rows = plan_axis(grid.row_segments(), g.kernel, g.stride, g.padding)?;
        let cols = plan_axis(grid.col_segments(), g.kernel, g.stride, g.padding)?;
        let kernel = policy.resolve(&conv);
        Ok(Self { conv, grid, rows, cols, pad_mode, kernel, packed: None })
    }

    /// Adds a build-time panel-major packed copy of the weights for the
    /// GEMM kernel (a no-op for layers resolved to the direct loop).
    /// Packing allocates once, here; every subsequent
    /// [`forward_block_into`](Self::forward_block_into) streams the packed
    /// panels instead of the row-major weight matrix, bitwise identically.
    #[must_use]
    pub fn with_packed_weights(mut self) -> Self {
        if self.kernel == KernelKind::Im2colGemm && self.packed.is_none() {
            self.packed = Some(Arc::new(PackedWeights::pack(&self.conv)));
        }
        self
    }

    /// The packed weight panels, if [`with_packed_weights`](Self::with_packed_weights)
    /// built them.
    pub fn packed_weights(&self) -> Option<&Arc<PackedWeights>> {
        self.packed.as_ref()
    }

    /// Plans a block convolution from a [`BlockingPattern`] on an `h × w`
    /// input.
    ///
    /// # Errors
    ///
    /// See [`BlockConv2d::plan`].
    pub fn from_pattern(
        conv: impl Into<Arc<Conv2d>>,
        h: usize,
        w: usize,
        pattern: BlockingPattern,
        pad_mode: PadMode,
    ) -> Result<Self, TensorError> {
        let grid = BlockGrid::from_pattern(h, w, pattern)?;
        Self::plan(conv, grid, pad_mode)
    }

    /// The underlying dense convolution.
    pub fn conv(&self) -> &Conv2d {
        &self.conv
    }

    /// The shared weight handle (the same allocation the planner was given).
    pub fn conv_arc(&self) -> &Arc<Conv2d> {
        &self.conv
    }

    /// The kernel implementation blocks execute through.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The block grid on the input.
    pub fn grid(&self) -> &BlockGrid {
        &self.grid
    }

    /// Block-padding mode.
    pub fn pad_mode(&self) -> PadMode {
        self.pad_mode
    }

    /// The grid induced on the output feature map.
    ///
    /// # Errors
    ///
    /// Never fails for a successfully planned block convolution; kept
    /// fallible for API uniformity with [`BlockGrid::from_segments`].
    pub fn output_grid(&self) -> Result<BlockGrid, TensorError> {
        let seg = |plan: &AxisPlan| {
            let mut out = Vec::with_capacity(plan.blocks.len());
            let mut cursor = 0;
            for b in &plan.blocks {
                out.push((cursor, b.out));
                cursor += b.out;
            }
            out
        };
        let rows = seg(&self.rows);
        let cols = seg(&self.cols);
        let h = rows.iter().map(|&(_, s)| s).sum();
        let w = cols.iter().map(|&(_, s)| s).sum();
        BlockGrid::from_segments(h, w, rows, cols)
    }

    /// Convolves a single input block (already cropped out of the feature
    /// map) at grid position `(row, col)`: applies the planned block
    /// padding and the dense kernel.
    ///
    /// This is the primitive a fused multi-layer executor calls per block.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `block` does not match the planned block
    /// size at `(row, col)`.
    pub fn forward_block(
        &self,
        block: &Tensor,
        row: usize,
        col: usize,
    ) -> Result<Tensor, TensorError> {
        let mut scratch = BlockConvScratch::default();
        let mut out = Tensor::zeros([0, 0, 0, 0]);
        self.forward_block_into(block, row, col, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// [`forward_block`](Self::forward_block) into a caller-provided
    /// output, drawing the padded-block temporary and the kernel's patch
    /// matrix from `scratch`. Fused executors call this once per block
    /// per stage with a per-worker scratch, so steady-state execution
    /// performs no allocation.
    ///
    /// # Errors
    ///
    /// See [`forward_block`](Self::forward_block).
    pub fn forward_block_into(
        &self,
        block: &Tensor,
        row: usize,
        col: usize,
        out: &mut Tensor,
        scratch: &mut BlockConvScratch,
    ) -> Result<(), TensorError> {
        self.pad_block_into(block, row, col, &mut scratch.padded)?;
        match &self.packed {
            Some(p) => {
                p.forward_prepadded_into(&self.conv, &scratch.padded, out, &mut scratch.conv)
            }
            None => self.conv.forward_prepadded_into(
                &scratch.padded,
                self.kernel,
                out,
                &mut scratch.conv,
            ),
        }
    }

    /// Applies only the planned Equation 2 block padding for grid position
    /// `(row, col)` to an already-cropped block, in the planned pad mode.
    ///
    /// This exposes the padding half of
    /// [`forward_block_into`](Self::forward_block_into) so alternative
    /// per-block kernels — e.g.
    /// the quantized integer path — can consume locally-padded blocks
    /// without padding twice.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `block` does not match the planned block
    /// size at `(row, col)`.
    pub fn pad_block_into(
        &self,
        block: &Tensor,
        row: usize,
        col: usize,
        padded: &mut Tensor,
    ) -> Result<(), TensorError> {
        let rp = &self.rows.blocks[row];
        let cp = &self.cols.blocks[col];
        let [_, _, bh, bw] = block.shape().dims();
        if bh != rp.size || bw != cp.size {
            return Err(TensorError::shape_mismatch(
                "BlockConv2d::forward_block",
                format!("[{},{}]", rp.size, cp.size),
                format!("[{bh},{bw}]"),
            ));
        }
        pad2d_asym_into(block, rp.pad_lo, rp.pad_hi, cp.pad_lo, cp.pad_hi, self.pad_mode, padded)
    }

    /// Full block convolution: split by the grid, convolve each block via
    /// [`forward_block`](Self::forward_block), concatenate.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `input` does not match the planned grid.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        let [n, _, h, w] = input.shape().dims();
        if h != self.grid.h() || w != self.grid.w() {
            return Err(TensorError::shape_mismatch(
                "BlockConv2d::forward input",
                format!("[{},{}]", self.grid.h(), self.grid.w()),
                format!("[{h},{w}]"),
            ));
        }
        let out_grid = self.output_grid()?;
        let mut out = Tensor::zeros([n, self.conv.c_out(), out_grid.h(), out_grid.w()]);
        // One scratch set reused across every block of the map.
        let mut scratch = BlockConvScratch::default();
        let mut cropped = Tensor::zeros([0, 0, 0, 0]);
        let mut conv_out = Tensor::zeros([0, 0, 0, 0]);
        for row in 0..self.grid.num_rows() {
            for col in 0..self.grid.num_cols() {
                let b = self.grid.block(row, col);
                let ob = out_grid.block(row, col);
                input.crop_into(b.h0, b.w0, b.bh, b.bw, &mut cropped)?;
                self.forward_block_into(&cropped, row, col, &mut conv_out, &mut scratch)?;
                out.paste(&conv_out, ob.h0, ob.w0)?;
            }
        }
        Ok(out)
    }

    /// Multiply–accumulate count of the whole block convolution — equal to
    /// the conventional convolution's by construction (paper §II-C).
    pub fn macs(&self) -> u64 {
        let k = self.conv.geom().kernel as u64;
        let per_out =
            k * k * (self.conv.c_in() / self.conv.groups()) as u64 * self.conv.c_out() as u64;
        let out_area: u64 = self
            .rows
            .blocks
            .iter()
            .flat_map(|r| self.cols.blocks.iter().map(move |c| (r.out * c.out) as u64))
            .sum();
        per_out * out_area
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bconv_tensor::conv::ConvGeom;
    use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};

    fn random_conv(c_in: usize, c_out: usize, k: usize, seed: u64) -> Conv2d {
        let mut rng = seeded_rng(seed);
        he_conv2d(c_in, c_out, ConvGeom::same(k), 1, &mut rng).unwrap()
    }

    #[test]
    fn figure3_shape_and_op_count() {
        // 8x8x3 input, 3x3x3 filter, 2x2 blocks: output 8x8, MACs equal.
        let conv = random_conv(3, 1, 3, 1);
        let dense_macs = conv.macs(8, 8).unwrap();
        let bconv =
            BlockConv2d::from_pattern(conv, 8, 8, BlockingPattern::hierarchical(2), PadMode::Zero)
                .unwrap();
        assert_eq!(bconv.macs(), dense_macs);
        let input = uniform_tensor([1, 3, 8, 8], -1.0, 1.0, &mut seeded_rng(2));
        let out = bconv.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), [1, 1, 8, 8]);
    }

    #[test]
    fn interior_pixels_match_dense_convolution() {
        // Pixels whose 3x3 receptive field stays inside one block are
        // bit-identical to the conventional convolution.
        let conv = random_conv(2, 2, 3, 3);
        let input = uniform_tensor([1, 2, 8, 8], -1.0, 1.0, &mut seeded_rng(4));
        let dense = conv.forward(&input).unwrap();
        let bconv =
            BlockConv2d::from_pattern(conv, 8, 8, BlockingPattern::hierarchical(2), PadMode::Zero)
                .unwrap();
        let blocked = bconv.forward(&input).unwrap();
        // Interior of the top-left 4x4 block: rows/cols 1..3.
        for c in 0..2 {
            for h in 1..3 {
                for w in 1..3 {
                    assert!(
                        (dense.at(0, c, h, w) - blocked.at(0, c, h, w)).abs() < 1e-5,
                        "interior pixel ({c},{h},{w}) differs"
                    );
                }
            }
        }
        // Boundary pixels generally differ (zero block padding vs real data).
        let diff = dense.max_abs_diff(&blocked).unwrap();
        assert!(diff > 0.0, "blocking should perturb boundary pixels");
    }

    #[test]
    fn single_block_grid_is_exactly_dense_convolution() {
        let conv = random_conv(3, 4, 3, 5);
        let input = uniform_tensor([1, 3, 10, 10], -1.0, 1.0, &mut seeded_rng(6));
        let dense = conv.forward(&input).unwrap();
        let bconv = BlockConv2d::plan(conv, BlockGrid::single(10, 10), PadMode::Zero).unwrap();
        let blocked = bconv.forward(&input).unwrap();
        assert!(dense.approx_eq(&blocked, 1e-5).unwrap());
    }

    #[test]
    fn pointwise_block_conv_is_exactly_pointwise() {
        // §II-C: "when the kernel size is 1, block convolution is exactly
        // the pointwise convolution".
        let mut rng = seeded_rng(7);
        let conv = he_conv2d(4, 6, ConvGeom::new(1, 1, 0), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 4, 8, 8], -1.0, 1.0, &mut rng);
        let dense = conv.forward(&input).unwrap();
        for pattern in [BlockingPattern::hierarchical(2), BlockingPattern::fixed(3)] {
            let bconv =
                BlockConv2d::from_pattern(conv.clone(), 8, 8, pattern, PadMode::Zero).unwrap();
            let blocked = bconv.forward(&input).unwrap();
            assert!(dense.approx_eq(&blocked, 1e-5).unwrap(), "pattern {pattern}");
        }
    }

    #[test]
    fn depthwise_block_conv_keeps_shape() {
        let mut rng = seeded_rng(8);
        let conv = he_conv2d(4, 4, ConvGeom::same(3), 4, &mut rng).unwrap();
        let input = uniform_tensor([1, 4, 8, 8], -1.0, 1.0, &mut rng);
        let bconv =
            BlockConv2d::from_pattern(conv, 8, 8, BlockingPattern::hierarchical(2), PadMode::Zero)
                .unwrap();
        let out = bconv.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), [1, 4, 8, 8]);
    }

    #[test]
    fn irregular_fixed_blocking_preserves_output_size() {
        // 41x41 "same" conv under F28 -> 28/13 splits, output still 41x41.
        let conv = random_conv(1, 1, 3, 9);
        let input = uniform_tensor([1, 1, 41, 41], -1.0, 1.0, &mut seeded_rng(10));
        let bconv =
            BlockConv2d::from_pattern(conv, 41, 41, BlockingPattern::fixed(28), PadMode::Zero)
                .unwrap();
        let out = bconv.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), [1, 1, 41, 41]);
    }

    #[test]
    fn replicate_and_reflect_block_padding_work() {
        let conv = random_conv(2, 2, 3, 11);
        let input = uniform_tensor([1, 2, 8, 8], -1.0, 1.0, &mut seeded_rng(12));
        for mode in PadMode::ALL {
            let bconv = BlockConv2d::from_pattern(
                conv.clone(),
                8,
                8,
                BlockingPattern::hierarchical(2),
                mode,
            )
            .unwrap();
            let out = bconv.forward(&input).unwrap();
            assert_eq!(out.shape().dims(), [1, 2, 8, 8], "mode {mode:?}");
        }
    }

    #[test]
    fn packed_weights_do_not_change_blocked_output() {
        let conv = random_conv(3, 8, 3, 21);
        let input = uniform_tensor([1, 3, 16, 16], -1.0, 1.0, &mut seeded_rng(22));
        let plain = BlockConv2d::from_pattern(
            conv.clone(),
            16,
            16,
            BlockingPattern::hierarchical(2),
            PadMode::Zero,
        )
        .unwrap();
        let packed = plain.clone().with_packed_weights();
        assert!(packed.packed_weights().is_some());
        let a = plain.forward(&input).unwrap();
        let b = packed.forward(&input).unwrap();
        assert_eq!(a.data(), b.data(), "packing must be bitwise invisible");
    }

    #[test]
    fn packing_is_skipped_for_direct_kernel() {
        let conv = random_conv(3, 4, 3, 23);
        let bconv = BlockConv2d::plan_with_kernel(
            conv,
            BlockGrid::single(8, 8),
            PadMode::Zero,
            KernelPolicy::Direct,
        )
        .unwrap()
        .with_packed_weights();
        assert!(bconv.packed_weights().is_none());
    }

    #[test]
    fn wrong_input_size_is_an_error() {
        let conv = random_conv(1, 1, 3, 13);
        let bconv =
            BlockConv2d::from_pattern(conv, 8, 8, BlockingPattern::hierarchical(2), PadMode::Zero)
                .unwrap();
        let input = Tensor::zeros([1, 1, 9, 8]);
        assert!(bconv.forward(&input).is_err());
    }

    #[test]
    fn forward_block_validates_block_shape() {
        let conv = random_conv(1, 1, 3, 14);
        let bconv =
            BlockConv2d::from_pattern(conv, 8, 8, BlockingPattern::hierarchical(2), PadMode::Zero)
                .unwrap();
        let bad = Tensor::zeros([1, 1, 5, 4]);
        assert!(bconv.forward_block(&bad, 0, 0).is_err());
    }

    #[test]
    fn output_grid_tracks_block_outputs() {
        let conv = random_conv(1, 1, 3, 15);
        let bconv =
            BlockConv2d::from_pattern(conv, 41, 41, BlockingPattern::fixed(28), PadMode::Zero)
                .unwrap();
        let og = bconv.output_grid().unwrap();
        assert_eq!(og.h(), 41);
        assert_eq!(og.row_segments(), &[(0, 28), (28, 13)]);
    }
}
