//! The paper's Equation 2: converting a conventional convolution into a
//! block convolution by finding a blocking number `N` and block padding
//! `pt` that keep the output size unchanged.
//!
//! ```text
//! floor((I + 2p - k) / s) + 1 = N * (floor((I/N + 2pt - k) / s) + 1)
//! ```

use bconv_tensor::shape::conv_out_dim;
use bconv_tensor::TensorError;

/// A solution of Equation 2 for one spatial axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockPadding {
    /// Blocking number `N` (blocks along the axis).
    pub n: usize,
    /// Symmetric block padding `pt` applied to each block.
    pub pt: usize,
}

/// Solves Equation 2 for `pt` given the axis size `I`, kernel `k`, stride
/// `s`, original padding `p` and blocking number `n`.
///
/// Returns `None` if no symmetric `pt` satisfies the equation (the paper
/// notes block padding "can be asymmetric, especially when convolutional
/// stride is larger than 1" — asymmetric cases are handled by
/// [`solve_asymmetric`]).
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] if the base geometry itself is
/// infeasible or `n` does not divide the axis.
///
/// # Examples
///
/// ```
/// use bconv_core::padding_solver::solve_symmetric;
/// // Paper §II-C example: I=8, k=3, s=1, p=1, N=2 -> pt=1
/// // (each 4-pixel block padded to 6 gives a 4-pixel output; 2*4 = 8).
/// assert_eq!(solve_symmetric(8, 3, 1, 1, 2)?, Some(1));
/// # Ok::<(), bconv_tensor::TensorError>(())
/// ```
pub fn solve_symmetric(
    i: usize,
    k: usize,
    s: usize,
    p: usize,
    n: usize,
) -> Result<Option<usize>, TensorError> {
    if n == 0 {
        return Err(TensorError::invalid("blocking number must be non-zero"));
    }
    if !i.is_multiple_of(n) {
        return Err(TensorError::invalid(format!("blocking number {n} must divide axis size {i}")));
    }
    let target = conv_out_dim(i, k, s, p)?;
    let block = i / n;
    // pt is bounded: beyond k + s the output only grows; search the small
    // feasible window exhaustively.
    for pt in 0..=(k + s) {
        if let Ok(out) = conv_out_dim(block, k, s, pt) {
            if n * out == target {
                return Ok(Some(pt));
            }
            if n * out > target {
                break;
            }
        }
    }
    Ok(None)
}

/// Asymmetric block padding `(lo, hi)` for one block of size `b` that must
/// produce exactly `out_b` outputs under kernel `k`, stride `s`.
///
/// Returns the padding with the smallest total `lo + hi`, preferring the
/// more balanced split (`lo <= hi`).
pub fn solve_asymmetric(b: usize, k: usize, s: usize, out_b: usize) -> Option<(usize, usize)> {
    // Need: floor((b + lo + hi - k) / s) + 1 == out_b with lo+hi minimal.
    // Smallest total padding t satisfying (b + t - k)/s + 1 >= out_b:
    let needed = (out_b - 1) * s + k;
    let total = needed.checked_sub(b)?;
    let lo = total / 2;
    let hi = total - lo;
    // Verify (guards against s not dividing evenly producing a larger out).
    let out = (b + total - k) / s + 1;
    (out == out_b).then_some((lo, hi))
}

/// Full per-axis blocking plan: for each block along the axis, the block
/// size, its (possibly asymmetric) padding and its output size. Produced by
/// [`plan_axis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisPlan {
    /// Per-block `(input_size, pad_lo, pad_hi, output_size)`.
    pub blocks: Vec<AxisBlockPlan>,
}

/// Geometry of one block along one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AxisBlockPlan {
    /// Block input extent.
    pub size: usize,
    /// Padding before the block.
    pub pad_lo: usize,
    /// Padding after the block.
    pub pad_hi: usize,
    /// Block output extent.
    pub out: usize,
}

/// Plans block padding along one axis for arbitrary (possibly unequal)
/// block segments, distributing the full output proportionally.
///
/// The full output `O = floor((I + 2p - k)/s) + 1` is split across blocks
/// proportionally to their input sizes (exactly when `s` divides every
/// segment), and each block receives the minimal padding that produces its
/// share. This generalises Equation 2 to the irregular/rectangular blocking
/// the paper uses in §II-F and Table VI.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] when the output cannot be
/// distributed (a segment not divisible by the stride) or a block cannot
/// reach its output share with non-negative padding.
pub fn plan_axis(
    segments: &[(usize, usize)],
    k: usize,
    s: usize,
    p: usize,
) -> Result<AxisPlan, TensorError> {
    let i: usize = segments.iter().map(|&(_, size)| size).sum();
    let target = conv_out_dim(i, k, s, p)?;
    // Distribute the output over the blocks proportionally to input size.
    let mut outs = Vec::with_capacity(segments.len());
    if s == 1 {
        // Stride 1: every input pixel maps to one output pixel when the
        // total output equals the input (the "same" case); otherwise the
        // deficit/surplus is carried by the last block.
        let mut remaining = target;
        for (idx, &(_, size)) in segments.iter().enumerate() {
            let out = if idx + 1 == segments.len() { remaining } else { size.min(remaining) };
            outs.push(out);
            remaining -= out;
        }
        if outs.iter().sum::<usize>() != target {
            return Err(TensorError::invalid("cannot distribute outputs across blocks"));
        }
    } else {
        for &(start, size) in segments {
            if start % s != 0 || size % s != 0 {
                return Err(TensorError::invalid(format!(
                    "segment ({start},{size}) not divisible by stride {s}; \
                     use stride-1 + pooling as in the paper's baselines"
                )));
            }
            outs.push(size / s);
        }
        if outs.iter().sum::<usize>() != target {
            return Err(TensorError::invalid(format!(
                "strided blocking produces {} outputs, target {target}",
                outs.iter().sum::<usize>()
            )));
        }
    }
    let blocks = segments
        .iter()
        .zip(&outs)
        .map(|(&(_, size), &out)| {
            solve_asymmetric(size, k, s, out)
                .map(|(pad_lo, pad_hi)| AxisBlockPlan { size, pad_lo, pad_hi, out })
                .ok_or_else(|| {
                    TensorError::invalid(format!(
                        "no block padding lets a {size}-pixel block produce {out} outputs \
                         (k={k}, s={s})"
                    ))
                })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(AxisPlan { blocks })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_8x8_two_blocks() {
        // §II-C: 8-wide axis, k=3, s=1, p=1, N=2 -> each 4-block padded by 1.
        assert_eq!(solve_symmetric(8, 3, 1, 1, 2).unwrap(), Some(1));
    }

    #[test]
    fn pointwise_needs_no_padding() {
        // k=1: block convolution is exactly pointwise convolution (§II-C).
        assert_eq!(solve_symmetric(8, 1, 1, 0, 4).unwrap(), Some(0));
    }

    #[test]
    fn five_by_five_kernel() {
        // k=5, p=2 same conv: blocks need pt=2.
        assert_eq!(solve_symmetric(16, 5, 1, 2, 2).unwrap(), Some(2));
    }

    #[test]
    fn strided_symmetric_case() {
        // I=8, k=2, s=2, p=0 -> out 4; N=2 -> each 4-block must give 2: pt=0.
        assert_eq!(solve_symmetric(8, 2, 2, 0, 2).unwrap(), Some(0));
    }

    #[test]
    fn strided_case_floor_division_admits_symmetric_solution() {
        // I=8, k=3, s=2, p=1 -> out 4; N=2 -> each block of 4 must give 2:
        // floor((4 + 2*1 - 3)/2) + 1 = 2, so pt = 1 works (the extra padded
        // pixel is simply never the start of a stride-2 window).
        assert_eq!(solve_symmetric(8, 3, 2, 1, 2).unwrap(), Some(1));
        // The asymmetric solver finds the minimal-total variant (0,1).
        assert_eq!(solve_asymmetric(4, 3, 2, 2), Some((0, 1)));
    }

    #[test]
    fn genuinely_unsolvable_symmetric_case() {
        // I=6, k=2, s=2, p=1 -> out = (6+2-2)/2+1 = 4; N=3 -> each block of
        // 2 must give 4/3 outputs: impossible, no pt exists.
        assert_eq!(solve_symmetric(6, 2, 2, 1, 3).unwrap(), None);
    }

    #[test]
    fn invalid_blocking_numbers_rejected() {
        assert!(solve_symmetric(8, 3, 1, 1, 0).is_err());
        assert!(solve_symmetric(8, 3, 1, 1, 3).is_err());
    }

    #[test]
    fn plan_axis_same_conv_equal_blocks() {
        let plan = plan_axis(&[(0, 4), (4, 4)], 3, 1, 1).unwrap();
        assert_eq!(plan.blocks.len(), 2);
        for b in &plan.blocks {
            assert_eq!((b.pad_lo, b.pad_hi, b.out), (1, 1, 4));
        }
    }

    #[test]
    fn plan_axis_irregular_blocks() {
        // 41 = 28 + 13, same 3x3 conv: each block keeps its size.
        let plan = plan_axis(&[(0, 28), (28, 13)], 3, 1, 1).unwrap();
        assert_eq!(plan.blocks[0].out, 28);
        assert_eq!(plan.blocks[1].out, 13);
        let total: usize = plan.blocks.iter().map(|b| b.out).sum();
        assert_eq!(total, 41);
    }

    #[test]
    fn plan_axis_valid_conv_shrinking_output() {
        // I=8, k=3, s=1, p=0 -> out 6. Blocks 4+4 -> outputs 4+2.
        let plan = plan_axis(&[(0, 4), (4, 4)], 3, 1, 0).unwrap();
        let outs: Vec<usize> = plan.blocks.iter().map(|b| b.out).collect();
        assert_eq!(outs.iter().sum::<usize>(), 6);
        assert_eq!(outs[0], 4);
        assert_eq!(outs[1], 2);
    }

    #[test]
    fn plan_axis_rejects_misaligned_stride() {
        assert!(plan_axis(&[(0, 3), (3, 5)], 3, 2, 1).is_err());
    }

    #[test]
    fn asymmetric_prefers_minimal_balanced_padding() {
        // Block of 4, k=3, s=1, out 4 -> total pad 2, balanced (1,1).
        assert_eq!(solve_asymmetric(4, 3, 1, 4), Some((1, 1)));
        // Block of 4, k=3, s=1, out 3 -> total pad 1 -> (0,1).
        assert_eq!(solve_asymmetric(4, 3, 1, 3), Some((0, 1)));
        // Infeasible: block already longer than needed.
        assert_eq!(solve_asymmetric(10, 3, 1, 2), None);
    }
}
