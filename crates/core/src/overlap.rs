//! Conventional **overlapped tiling** (Figure 2a) — the scheme block
//! convolution replaces. Implemented both as an executable reference
//! (tiles with halos, exact results) and as a cost model (halo re-read
//! traffic, the cross-tile dependency that blocks multi-layer fusion).
//!
//! Comparing [`overlapped_conv2d`] with
//! [`BlockConv2d`](crate::BlockConv2d) demonstrates the paper's §II-A
//! observation: overlapped tiling computes the *exact* convolution but
//! every tile depends on its neighbours' pixels, so consecutive layers
//! cannot be fused without buffering whole feature maps.

use bconv_tensor::conv::Conv2d;
use bconv_tensor::pad::{pad2d, PadMode};
use bconv_tensor::{Tensor, TensorError};

use crate::blocking::BlockGrid;

/// Traffic statistics of an overlapped-tiled convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverlapStats {
    /// Input elements read, including halo re-reads.
    pub input_elems_read: usize,
    /// Input elements read by an ideal (non-overlapping) scheme.
    pub input_elems_unique: usize,
    /// Output elements written.
    pub output_elems: usize,
}

impl OverlapStats {
    /// Read amplification caused by halo overlap (≥ 1).
    pub fn read_amplification(&self) -> f64 {
        if self.input_elems_unique == 0 {
            1.0
        } else {
            self.input_elems_read as f64 / self.input_elems_unique as f64
        }
    }
}

/// Convolution by overlapped spatial tiling: each output tile is computed
/// from an input tile extended by the kernel halo, reading boundary pixels
/// of the neighbouring tiles. Numerically identical to `conv.forward`.
///
/// Only stride-1 convolutions are supported (the configuration the paper
/// tiles; strided layers are expressed as conv + pool).
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] for strided convolutions or a
/// grid that does not match the input size.
pub fn overlapped_conv2d(
    conv: &Conv2d,
    input: &Tensor,
    grid: &BlockGrid,
) -> Result<(Tensor, OverlapStats), TensorError> {
    let geom = conv.geom();
    if geom.stride != 1 {
        return Err(TensorError::invalid("overlapped tiling reference supports stride-1 only"));
    }
    let [n, c, h, w] = input.shape().dims();
    if h != grid.h() || w != grid.w() {
        return Err(TensorError::shape_mismatch(
            "overlapped_conv2d input",
            format!("[{},{}]", grid.h(), grid.w()),
            format!("[{h},{w}]"),
        ));
    }
    // Pad the whole map once (zero padding, as the dense conv would);
    // tiles then read from the padded map with their halos.
    let p = geom.padding;
    let halo = geom.kernel - 1;
    let padded = pad2d(input, p, p, PadMode::Zero)?;
    let mut out = Tensor::zeros([n, conv.c_out(), h, w]);
    let mut stats = OverlapStats {
        input_elems_unique: n * c * h * w,
        output_elems: n * conv.c_out() * h * w,
        ..OverlapStats::default()
    };
    for block in grid.blocks() {
        // Input tile with halo, in padded coordinates.
        let in_h = block.bh + halo;
        let in_w = block.bw + halo;
        let tile = padded.crop(block.h0, block.w0, in_h, in_w)?;
        stats.input_elems_read += tile.shape().numel();
        let tile_out = conv.forward_prepadded(&tile)?;
        out.paste(&tile_out, block.h0, block.w0)?;
    }
    Ok((out, stats))
}

/// Halo read-amplification of tiling an `h × w` map into `th × tw` tiles
/// with a `k × k` stride-1 kernel, without executing anything — the
/// analytic form used by the accelerator models.
pub fn halo_read_amplification(h: usize, w: usize, th: usize, tw: usize, k: usize) -> f64 {
    let halo = k - 1;
    let tiles_h = h.div_ceil(th);
    let tiles_w = w.div_ceil(tw);
    let read = (tiles_h * tiles_w) as f64 * ((th + halo) * (tw + halo)) as f64;
    read / (h * w) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::BlockingPattern;
    use bconv_tensor::conv::ConvGeom;
    use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};

    #[test]
    fn overlapped_tiling_is_exact() {
        // Figure 2(a): overlapped tiling reproduces the dense convolution
        // bit-for-bit — its problem is the dependency, not the numerics.
        let mut rng = seeded_rng(1);
        let conv = he_conv2d(3, 4, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 3, 16, 16], -1.0, 1.0, &mut rng);
        let dense = conv.forward(&input).unwrap();
        for pattern in [BlockingPattern::hierarchical(2), BlockingPattern::fixed(5)] {
            let grid = BlockGrid::from_pattern(16, 16, pattern).unwrap();
            let (tiled, _) = overlapped_conv2d(&conv, &input, &grid).unwrap();
            assert!(tiled.approx_eq(&dense, 1e-5).unwrap(), "{pattern}");
        }
    }

    #[test]
    fn halo_reads_amplify_with_finer_tiling() {
        let mut rng = seeded_rng(2);
        let conv = he_conv2d(1, 1, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 1, 32, 32], -1.0, 1.0, &mut rng);
        let coarse = BlockGrid::from_pattern(32, 32, BlockingPattern::hierarchical(2)).unwrap();
        let fine = BlockGrid::from_pattern(32, 32, BlockingPattern::hierarchical(8)).unwrap();
        let (_, sc) = overlapped_conv2d(&conv, &input, &coarse).unwrap();
        let (_, sf) = overlapped_conv2d(&conv, &input, &fine).unwrap();
        assert!(sf.read_amplification() > sc.read_amplification());
        assert!(sc.read_amplification() > 1.0);
    }

    #[test]
    fn block_conv_reads_have_no_amplification() {
        // The contrast with block convolution: independent blocks read each
        // input pixel exactly once.
        let grid = BlockGrid::from_pattern(32, 32, BlockingPattern::hierarchical(4)).unwrap();
        let unique: usize = grid.blocks().map(|b| b.area()).sum();
        assert_eq!(unique, 32 * 32);
    }

    #[test]
    fn analytic_amplification_matches_executed() {
        let mut rng = seeded_rng(3);
        let conv = he_conv2d(1, 1, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 1, 24, 24], -1.0, 1.0, &mut rng);
        let grid = BlockGrid::from_pattern(24, 24, BlockingPattern::fixed(8)).unwrap();
        let (_, stats) = overlapped_conv2d(&conv, &input, &grid).unwrap();
        let analytic = halo_read_amplification(24, 24, 8, 8, 3);
        assert!((stats.read_amplification() - analytic).abs() < 1e-9);
    }

    #[test]
    fn vdsr_tile_amplification_matches_paper_model() {
        // The 27x48 tiling of the VDSR baseline re-reads ~11.9% extra.
        let amp = halo_read_amplification(1080, 1920, 27, 48, 3);
        assert!((amp - (29.0 * 50.0) / (27.0 * 48.0)).abs() < 1e-9);
    }

    #[test]
    fn strided_conv_rejected() {
        let mut rng = seeded_rng(4);
        let conv = he_conv2d(1, 1, ConvGeom::new(3, 2, 1), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 1, 8, 8], -1.0, 1.0, &mut rng);
        let grid = BlockGrid::single(8, 8);
        assert!(overlapped_conv2d(&conv, &input, &grid).is_err());
    }
}
