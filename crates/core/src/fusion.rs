//! Block-wise multi-layer fusion (paper §II-B, §III).
//!
//! With block convolution the computation of several consecutive layers can
//! be carried out *per block*: a block flows through conv → relu → pool →
//! conv → ... entirely in on-chip-sized buffers, and only the first input
//! and the final output ever cross the off-chip boundary. [`FusedChain`]
//! models one such fusion group; [`FusedPipeline`] chains groups with an
//! on-chip "extra buffer" concatenation between them (Figure 10's CONV4
//! stage, where fixed blocking splices pooled blocks back together).

use std::sync::Arc;

use bconv_quant::qconv::{QConvScratch, QuantChainOp};
use bconv_quant::QParams;
use bconv_tensor::activation::relu_inplace;
use bconv_tensor::conv::Conv2d;
use bconv_tensor::kernel::KernelPolicy;
use bconv_tensor::pad::PadMode;
use bconv_tensor::pool::{max_pool2d, max_pool2d_into};
use bconv_tensor::{Tensor, TensorError};

use crate::block_conv::{BlockConv2d, BlockConvScratch};
use crate::blocking::BlockGrid;

/// One operation in a fusion group.
///
/// Convolution weights are held behind an [`Arc`]: planning a chain from
/// a weight-bound graph shares the graph's weight tensors instead of
/// deep-cloning them.
#[derive(Debug, Clone)]
pub enum ChainOp {
    /// A stride-1 convolution, executed as a block convolution.
    Conv(Arc<Conv2d>),
    /// Element-wise ReLU.
    Relu,
    /// `k × k` max pooling with stride `k` (the paper's baselines replace
    /// strided convolution with stride-1 convolution + pooling, §II-F).
    MaxPool {
        /// Pooling window and stride.
        k: usize,
    },
}

impl ChainOp {
    /// Convenience constructor wrapping a convolution (owned or shared)
    /// into the chain.
    pub fn conv(conv: impl Into<Arc<Conv2d>>) -> Self {
        Self::Conv(conv.into())
    }
}

/// A fusion-group stage whose convolution is already solved: the planner's
/// trial walk runs [`BlockConv2d::plan_with_kernel`] to validate every
/// candidate extension, so assembling the final chain from [`PlannedOp`]s
/// (via [`FusedChain::from_planned`]) reuses those Equation 2 solutions
/// instead of re-solving them.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // conv stages dominate by design
pub enum PlannedOp {
    /// A solved block convolution.
    Conv(BlockConv2d),
    /// Element-wise ReLU.
    Relu,
    /// `k × k` max pooling with stride `k`.
    MaxPool {
        /// Pooling window and stride.
        k: usize,
    },
}

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // conv stages dominate by design
enum Stage {
    Conv(BlockConv2d),
    /// A quantized block convolution: `plan` carries the Equation 2 padding
    /// schedule and grids, `op` the integer arithmetic. The block executor
    /// pads once via the plan and hands the padded block to the quantized
    /// kernel — no double padding.
    QConv {
        plan: BlockConv2d,
        op: QuantChainOp,
    },
    Relu,
    Pool {
        k: usize,
    },
}

/// Memory and traffic statistics of one execution, in **elements** (multiply
/// by the bitwidth to get bits, as Figures 1/9 and Table IX do).
///
/// These model the paper's **accelerator dataflow** — feature-map block
/// buffers and off-chip feature-map transfers — not host-process memory.
/// CPU-side kernel temporaries (the padded block, the im2col patch
/// matrix of [`bconv_tensor::kernel`]) are execution details of *this*
/// reference implementation and are excluded, as is weight storage.
/// Both fields are scheduling-invariant: identical for any worker-thread
/// count and any kernel choice.
///
/// Element counts are bitwidth-agnostic; `bits_per_elem` records the word
/// width one feature-map element occupies on the wire (32 for the float
/// backends, the activation bitwidth for the quantized backend), so
/// [`offchip_bits`](Self::offchip_bits) reports traffic the way the paper's
/// memory figures do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Peak number of elements simultaneously alive in working buffers.
    pub peak_working_elems: usize,
    /// Elements transferred across the off-chip boundary (reads + writes of
    /// feature maps; weights excluded).
    pub offchip_elems: usize,
    /// Bits per feature-map element at the executing precision (32 = f32).
    pub bits_per_elem: u8,
}

impl Default for MemStats {
    fn default() -> Self {
        Self { peak_working_elems: 0, offchip_elems: 0, bits_per_elem: 32 }
    }
}

impl MemStats {
    /// Off-chip traffic in bits at the executing precision.
    pub fn offchip_bits(&self) -> u64 {
        self.offchip_elems as u64 * self.bits_per_elem as u64
    }

    /// Peak working-buffer footprint in bits at the executing precision.
    pub fn peak_working_bits(&self) -> u64 {
        self.peak_working_elems as u64 * self.bits_per_elem as u64
    }
}

/// Reusable per-worker buffers for block-by-block chain execution: the
/// ping-pong block pair (Figure 10's intermediate buffers) plus the
/// convolution temporaries. Buffers grow to the largest block seen and
/// are reused across blocks and chain stages — steady-state fused
/// execution allocates nothing.
#[derive(Debug, Default)]
pub struct BlockScratch {
    cur: Tensor,
    next: Tensor,
    conv: BlockConvScratch,
    qpad: Tensor,
    qconv: QConvScratch,
}

impl BlockScratch {
    /// A fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The output block left behind by the last
    /// [`FusedChain::run_block_scratch`] call.
    pub fn output(&self) -> &Tensor {
        &self.cur
    }
}

/// Reusable buffers for spliced-pipeline execution: the per-block
/// [`BlockScratch`] shared by every group, plus the two alternating
/// group-boundary maps (the accelerator's extra buffer of Figure 10 —
/// one holds the upstream group's spliced output while the downstream
/// group writes the next boundary into the other).
#[derive(Debug, Default)]
pub struct PipelineScratch {
    block: BlockScratch,
    ping: Tensor,
    pong: Tensor,
}

impl PipelineScratch {
    /// A fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-block scratch, for callers that interleave plain
    /// [`FusedChain`] runs with pipeline runs and want one set of block
    /// buffers rather than two (e.g. an executor's per-worker scratch).
    pub fn block_mut(&mut self) -> &mut BlockScratch {
        &mut self.block
    }
}

/// A fusion group: a chain of ops executed block-by-block under one grid.
#[derive(Debug, Clone)]
pub struct FusedChain {
    stages: Vec<Stage>,
    in_grid: BlockGrid,
    out_grid: BlockGrid,
}

impl FusedChain {
    /// Plans a fusion group for inputs tiled by `grid`.
    ///
    /// Convolutions must be stride-1 (strided layers are expressed as
    /// conv + pool per the paper's baseline rewrite); pooling requires the
    /// grid to stay aligned ([`BlockGrid::downscale`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when a stage cannot be
    /// blocked under the running grid.
    pub fn plan(
        ops: Vec<ChainOp>,
        grid: BlockGrid,
        pad_mode: PadMode,
    ) -> Result<Self, TensorError> {
        Self::plan_with_kernel(ops, grid, pad_mode, KernelPolicy::default())
    }

    /// [`plan`](Self::plan) with an explicit [`KernelPolicy`]: every conv
    /// stage resolves its kernel (direct loop vs im2col+GEMM) under the
    /// policy at plan time, so execution carries no per-run dispatch.
    ///
    /// # Errors
    ///
    /// See [`FusedChain::plan`].
    pub fn plan_with_kernel(
        ops: Vec<ChainOp>,
        grid: BlockGrid,
        pad_mode: PadMode,
        policy: KernelPolicy,
    ) -> Result<Self, TensorError> {
        let in_grid = grid.clone();
        let mut cur = grid;
        let mut stages = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                ChainOp::Conv(conv) => {
                    if conv.geom().stride != 1 {
                        return Err(TensorError::invalid(
                            "fused convolutions must be stride-1; express stride as conv + pool",
                        ));
                    }
                    let bconv = BlockConv2d::plan_with_kernel(conv, cur.clone(), pad_mode, policy)?
                        .with_packed_weights();
                    cur = bconv.output_grid()?;
                    stages.push(Stage::Conv(bconv));
                }
                ChainOp::Relu => stages.push(Stage::Relu),
                ChainOp::MaxPool { k } => {
                    cur = cur.downscale(k)?;
                    stages.push(Stage::Pool { k });
                }
            }
        }
        Ok(Self { stages, in_grid, out_grid: cur })
    }

    /// Plans a **quantized** fusion group: every convolution executes
    /// through the integer path of [`bconv_quant::qconv::QConv2d`] — i32
    /// activations, i64 accumulators — with its input activations
    /// requantized at the stage's calibrated parameters. Block padding
    /// follows the same Equation 2 schedule and `pad_mode` as the float
    /// plan, applied once per block (the quantized kernel runs prepadded).
    ///
    /// `act_params` holds the frozen input-activation [`QParams`] of each
    /// [`ChainOp::Conv`], in op order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when a stage cannot be
    /// blocked under the running grid, when `act_params` does not cover
    /// exactly the chain's convolutions, or when a convolution's weights
    /// are all zero (no quantized form).
    pub fn plan_quantized(
        ops: Vec<ChainOp>,
        grid: BlockGrid,
        pad_mode: PadMode,
        weight_bits: u8,
        act_params: &[QParams],
    ) -> Result<Self, TensorError> {
        Self::plan_quantized_with_kernel(
            ops,
            grid,
            pad_mode,
            weight_bits,
            act_params,
            KernelPolicy::default(),
        )
    }

    /// [`plan_quantized`](Self::plan_quantized) with an explicit
    /// [`KernelPolicy`]: each quantized conv resolves the policy on its
    /// (geometry-identical) float layer and executes through the matching
    /// integer kernel — the direct i64-accumulator loop or the `i16`
    /// im2col+GEMM fast path — so `Auto` picks the integer GEMM exactly
    /// where the float path would pick im2col+GEMM.
    ///
    /// # Errors
    ///
    /// See [`FusedChain::plan_quantized`].
    pub fn plan_quantized_with_kernel(
        ops: Vec<ChainOp>,
        grid: BlockGrid,
        pad_mode: PadMode,
        weight_bits: u8,
        act_params: &[QParams],
        policy: KernelPolicy,
    ) -> Result<Self, TensorError> {
        let in_grid = grid.clone();
        let mut cur = grid;
        let mut stages = Vec::with_capacity(ops.len());
        let mut conv_idx = 0usize;
        for op in ops {
            match op {
                ChainOp::Conv(conv) => {
                    if conv.geom().stride != 1 {
                        return Err(TensorError::invalid(
                            "fused convolutions must be stride-1; express stride as conv + pool",
                        ));
                    }
                    let params = act_params.get(conv_idx).copied().ok_or_else(|| {
                        TensorError::invalid(format!(
                            "plan_quantized: {} act-param sets for conv stage {}",
                            act_params.len(),
                            conv_idx + 1
                        ))
                    })?;
                    conv_idx += 1;
                    // The plan's resolved kernel drives the *integer*
                    // loops: the QuantChainOp inherits it and runs either
                    // the direct loop or the i16 im2col+GEMM. Float weight
                    // packing is skipped — this plan only ever pads blocks.
                    let plan = BlockConv2d::plan_with_kernel(
                        Arc::clone(&conv),
                        cur.clone(),
                        pad_mode,
                        policy,
                    )?;
                    cur = plan.output_grid()?;
                    let op = QuantChainOp::from_conv_with_kernel(
                        &conv,
                        weight_bits,
                        params,
                        plan.kernel(),
                    )
                    .ok_or_else(|| TensorError::invalid("plan_quantized: all-zero conv weights"))?;
                    stages.push(Stage::QConv { plan, op });
                }
                ChainOp::Relu => stages.push(Stage::Relu),
                ChainOp::MaxPool { k } => {
                    cur = cur.downscale(k)?;
                    stages.push(Stage::Pool { k });
                }
            }
        }
        if conv_idx != act_params.len() {
            return Err(TensorError::invalid(format!(
                "plan_quantized: {} act-param sets for {} conv stages",
                act_params.len(),
                conv_idx
            )));
        }
        Ok(Self { stages, in_grid, out_grid: cur })
    }

    /// Assembles a chain from pre-solved stages, validating grid continuity
    /// instead of re-solving each convolution's Equation 2 padding
    /// schedule: each conv stage must have been planned on exactly the grid
    /// the preceding stages produce.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when a conv stage was planned
    /// on a different grid than the running one, and
    /// [`TensorError::InvalidParameter`] when pooling misaligns the grid.
    pub fn from_planned(ops: Vec<PlannedOp>, in_grid: BlockGrid) -> Result<Self, TensorError> {
        let mut cur = in_grid.clone();
        let mut stages = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                PlannedOp::Conv(bconv) => {
                    if bconv.grid() != &cur {
                        return Err(TensorError::shape_mismatch(
                            "FusedChain::from_planned conv stage grid",
                            cur.to_string(),
                            bconv.grid().to_string(),
                        ));
                    }
                    cur = bconv.output_grid()?;
                    stages.push(Stage::Conv(bconv.with_packed_weights()));
                }
                PlannedOp::Relu => stages.push(Stage::Relu),
                PlannedOp::MaxPool { k } => {
                    cur = cur.downscale(k)?;
                    stages.push(Stage::Pool { k });
                }
            }
        }
        Ok(Self { stages, in_grid, out_grid: cur })
    }

    /// [`from_planned`](Self::from_planned) on the quantized integer path:
    /// each pre-solved conv plan keeps its padding schedule and grids, and
    /// gains a [`QuantChainOp`] quantized at `weight_bits` with the stage's
    /// calibrated input-activation [`QParams`] (one per conv, in order).
    ///
    /// # Errors
    ///
    /// As [`from_planned`](Self::from_planned), plus
    /// [`TensorError::InvalidParameter`] when `act_params` does not cover
    /// exactly the chain's convolutions or a convolution's weights are all
    /// zero (no quantized form).
    pub fn from_planned_quantized(
        ops: Vec<PlannedOp>,
        in_grid: BlockGrid,
        weight_bits: u8,
        act_params: &[QParams],
    ) -> Result<Self, TensorError> {
        let mut cur = in_grid.clone();
        let mut stages = Vec::with_capacity(ops.len());
        let mut conv_idx = 0usize;
        for op in ops {
            match op {
                PlannedOp::Conv(plan) => {
                    if plan.grid() != &cur {
                        return Err(TensorError::shape_mismatch(
                            "FusedChain::from_planned_quantized conv stage grid",
                            cur.to_string(),
                            plan.grid().to_string(),
                        ));
                    }
                    let params = act_params.get(conv_idx).copied().ok_or_else(|| {
                        TensorError::invalid(format!(
                            "from_planned_quantized: {} act-param sets for conv stage {}",
                            act_params.len(),
                            conv_idx + 1
                        ))
                    })?;
                    conv_idx += 1;
                    cur = plan.output_grid()?;
                    let op = QuantChainOp::from_conv_with_kernel(
                        plan.conv(),
                        weight_bits,
                        params,
                        plan.kernel(),
                    )
                    .ok_or_else(|| {
                        TensorError::invalid("from_planned_quantized: all-zero conv weights")
                    })?;
                    stages.push(Stage::QConv { plan, op });
                }
                PlannedOp::Relu => stages.push(Stage::Relu),
                PlannedOp::MaxPool { k } => {
                    cur = cur.downscale(k)?;
                    stages.push(Stage::Pool { k });
                }
            }
        }
        if conv_idx != act_params.len() {
            return Err(TensorError::invalid(format!(
                "from_planned_quantized: {} act-param sets for {} conv stages",
                act_params.len(),
                conv_idx
            )));
        }
        Ok(Self { stages, in_grid, out_grid: cur })
    }

    /// Activation bitwidth of the chain's quantized stages, `None` for a
    /// float chain. Quantized chains are planned with one activation
    /// bitwidth throughout, so the first quantized stage is authoritative.
    pub fn act_bits(&self) -> Option<u8> {
        self.stages.iter().find_map(|s| match s {
            Stage::QConv { op, .. } => Some(op.act_params().bits()),
            _ => None,
        })
    }

    /// Grid on the group's input.
    pub fn in_grid(&self) -> &BlockGrid {
        &self.in_grid
    }

    /// Grid on the group's output.
    pub fn out_grid(&self) -> &BlockGrid {
        &self.out_grid
    }

    /// Number of stages in the group.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if the group has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Output channel count given the input channel count.
    pub fn out_channels(&self, c_in: usize) -> usize {
        self.stages.iter().fold(c_in, |c, s| match s {
            Stage::Conv(b) => b.conv().c_out(),
            Stage::QConv { op, .. } => op.qconv().c_out(),
            _ => c,
        })
    }

    /// The block-convolution plans of the chain's conv stages (float and
    /// quantized), in order.
    pub fn convs(&self) -> impl Iterator<Item = &BlockConv2d> {
        self.stages.iter().filter_map(|s| match s {
            Stage::Conv(b) => Some(b),
            Stage::QConv { plan, .. } => Some(plan),
            _ => None,
        })
    }

    /// Runs a single block `(row, col)` of `input` through every stage of
    /// the chain, reusing `scratch` for all intermediates; the result is
    /// left in [`BlockScratch::output`]. Blocks are independent by
    /// construction (paper §II-C), so callers may invoke this from
    /// multiple threads — one scratch per thread — in any order.
    ///
    /// `stats` accumulates the per-block working-set peak; off-chip
    /// traffic is accounted by the caller at the chain boundary.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `input` does not match the planned grid.
    pub fn run_block_scratch(
        &self,
        input: &Tensor,
        row: usize,
        col: usize,
        scratch: &mut BlockScratch,
        stats: &mut MemStats,
    ) -> Result<(), TensorError> {
        let b = self.in_grid.block(row, col);
        input.crop_into(b.h0, b.w0, b.bh, b.bw, &mut scratch.cur)?;
        for stage in &self.stages {
            match stage {
                Stage::Conv(bconv) => {
                    bconv.forward_block_into(
                        &scratch.cur,
                        row,
                        col,
                        &mut scratch.next,
                        &mut scratch.conv,
                    )?;
                }
                Stage::QConv { plan, op } => {
                    // Pad once (Equation 2 schedule, session pad mode), then
                    // hand the padded block to the integer kernel.
                    plan.pad_block_into(&scratch.cur, row, col, &mut scratch.qpad)?;
                    op.forward_prepadded_into(
                        &scratch.qpad,
                        &mut scratch.next,
                        &mut scratch.qconv,
                    )?;
                }
                Stage::Relu => {
                    relu_inplace(&mut scratch.cur);
                    continue;
                }
                Stage::Pool { k } => max_pool2d_into(&scratch.cur, *k, *k, &mut scratch.next)?,
            }
            // Input and output block buffers are alive simultaneously
            // (the paper's ping-pong intermediate buffers, Figure 10).
            stats.peak_working_elems = stats
                .peak_working_elems
                .max(scratch.cur.shape().numel() + scratch.next.shape().numel());
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
        }
        Ok(())
    }

    /// Executes the group block-by-block (*fused* dataflow): only the input
    /// and the group output cross the off-chip boundary.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `input` does not match the planned grid.
    pub fn run_fused(&self, input: &Tensor) -> Result<(Tensor, MemStats), TensorError> {
        self.run_fused_threads(input, 1)
    }

    /// [`run_fused`](Self::run_fused) with the blocks dispatched across
    /// `threads` scoped worker threads (clamped to the block count; `<= 1`
    /// runs serially). Blocks are independent by construction and write
    /// disjoint output regions, so every block runs the same per-block
    /// routine as the serial path, each worker reuses one [`BlockScratch`]
    /// across its contiguous chunk, and the output is **bitwise identical
    /// at any thread count**. [`MemStats`] stay exact: off-chip traffic is
    /// the group input + output and the working-set peak is a max over
    /// blocks — both scheduling-invariant.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `input` does not match the planned grid.
    pub fn run_fused_threads(
        &self,
        input: &Tensor,
        threads: usize,
    ) -> Result<(Tensor, MemStats), TensorError> {
        let mut out = Tensor::default();
        let mut scratch = BlockScratch::new();
        let stats = self.run_fused_into(input, threads, &mut out, &mut scratch)?;
        Ok((out, stats))
    }

    /// [`run_fused_threads`](Self::run_fused_threads) into caller-owned
    /// buffers — the serving-path primitive. `out` is reshaped to the
    /// group's output map and every element is overwritten (the output
    /// grid tiles it exactly); on the serial path `scratch` carries all
    /// block intermediates, so a caller that reuses both across requests
    /// performs **zero steady-state allocation** per run. The chain is
    /// batch-aware: inputs may carry any batch size `n` (coalesced
    /// requests run as one map), block buffers simply grow with `n` the
    /// first time and are handed back through `scratch` for the next run.
    ///
    /// With `threads > 1` each scoped worker owns a private scratch for
    /// the duration of the call (`scratch` is bypassed — per-worker
    /// buffers cannot outlive the scope).
    ///
    /// # Errors
    ///
    /// Returns shape errors if `input` does not match the planned grid.
    pub fn run_fused_into(
        &self,
        input: &Tensor,
        threads: usize,
        out: &mut Tensor,
        scratch: &mut BlockScratch,
    ) -> Result<MemStats, TensorError> {
        let [n, c, h, w] = input.shape().dims();
        if h != self.in_grid.h() || w != self.in_grid.w() {
            return Err(TensorError::shape_mismatch(
                "FusedChain::run_fused input",
                format!("[{},{}]", self.in_grid.h(), self.in_grid.w()),
                format!("[{h},{w}]"),
            ));
        }
        let c_out = self.out_channels(c);
        out.reset([n, c_out, self.out_grid.h(), self.out_grid.w()]);
        let mut stats = MemStats {
            peak_working_elems: 0,
            offchip_elems: input.shape().numel() + out.shape().numel(),
            bits_per_elem: self.act_bits().unwrap_or(32),
        };
        // Blocks are walked row-major by linear index — never materialised
        // as a list, so the serial (serving) path below performs zero
        // steady-state allocation (gated by `bconv-analyze` lint L1 and
        // the alloc-gate test).
        let cols = self.in_grid.num_cols();
        let num_blocks = self.in_grid.num_rows() * cols;
        let workers = threads.min(num_blocks).max(1);

        if workers <= 1 {
            // The caller's scratch serves every block and stage of the run.
            for i in 0..num_blocks {
                let (row, col) = (i / cols, i % cols);
                self.run_block_scratch(input, row, col, scratch, &mut stats)?;
                let ob = self.out_grid.block(row, col);
                out.paste(scratch.output(), ob.h0, ob.w0)?;
            }
            return Ok(stats);
        }

        // Static contiguous partition; workers paste their (disjoint)
        // output blocks under a short-held lock, so no per-block result
        // tensors are materialised and the outcome cannot depend on
        // timing.
        let chunk = num_blocks.div_ceil(workers);
        let out_slot = std::sync::Mutex::new(out);
        std::thread::scope(|scope| -> Result<(), TensorError> {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let (start, end) = (w * chunk, ((w + 1) * chunk).min(num_blocks));
                if start >= end {
                    break;
                }
                let out_slot = &out_slot;
                handles.push(scope.spawn(move || -> Result<MemStats, TensorError> {
                    let mut scratch = BlockScratch::new();
                    let mut local = MemStats::default();
                    for i in start..end {
                        let (row, col) = (i / cols, i % cols);
                        self.run_block_scratch(input, row, col, &mut scratch, &mut local)?;
                        let ob = self.out_grid.block(row, col);
                        // Poison-tolerant: pastes are disjoint, and a peer
                        // panic is surfaced as a typed error at join below
                        // (the partial output is discarded with it).
                        let mut guard =
                            out_slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        guard.paste(scratch.output(), ob.h0, ob.w0)?;
                    }
                    Ok(local)
                }));
            }
            for handle in handles {
                let local = handle
                    .join()
                    .map_err(|_| TensorError::invalid("fused-chain block worker panicked"))??;
                stats.peak_working_elems = stats.peak_working_elems.max(local.peak_working_elems);
            }
            Ok(())
        })?;
        Ok(stats)
    }

    /// Executes the group layer-by-layer on whole feature maps (the
    /// conventional accelerator dataflow): every intermediate map is
    /// written to and read back from off-chip memory.
    ///
    /// Numerically identical to [`run_fused`](Self::run_fused) — fusion
    /// changes the schedule, not the mathematics.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `input` does not match the planned grid.
    pub fn run_layerwise(&self, input: &Tensor) -> Result<(Tensor, MemStats), TensorError> {
        let mut stats = MemStats {
            peak_working_elems: 0,
            offchip_elems: input.shape().numel(),
            bits_per_elem: self.act_bits().unwrap_or(32),
        };
        let mut cur = input.clone();
        // The chain output is whatever the last *materialising* stage
        // produces — a trailing in-place ReLU must not push the final conv
        // back into the 2x (write + read-back) intermediate bucket.
        let last = self.stages.iter().rposition(|s| !matches!(s, Stage::Relu));
        for (idx, stage) in self.stages.iter().enumerate() {
            let next = match stage {
                Stage::Conv(bconv) => bconv.forward(&cur)?,
                Stage::QConv { plan, op } => qconv_forward_map(plan, op, &cur)?,
                Stage::Relu => {
                    relu_inplace(&mut cur);
                    continue;
                }
                Stage::Pool { k } => max_pool2d(&cur, *k, *k)?,
            };
            stats.peak_working_elems =
                stats.peak_working_elems.max(cur.shape().numel() + next.shape().numel());
            // Intermediate maps make a DRAM round trip (write + read);
            // the final output is written once.
            stats.offchip_elems +=
                if Some(idx) == last { next.shape().numel() } else { 2 * next.shape().numel() };
            cur = next;
        }
        Ok((cur, stats))
    }
}

/// Whole-map quantized block convolution: split by the plan's grid, pad
/// each block locally, run the integer kernel, concatenate — the
/// layer-wise counterpart of the fused [`Stage::QConv`] path (same
/// mathematics, conventional schedule).
fn qconv_forward_map(
    plan: &BlockConv2d,
    op: &QuantChainOp,
    input: &Tensor,
) -> Result<Tensor, TensorError> {
    let [n, _, h, w] = input.shape().dims();
    let grid = plan.grid();
    if h != grid.h() || w != grid.w() {
        return Err(TensorError::shape_mismatch(
            "quantized chain stage input",
            format!("[{},{}]", grid.h(), grid.w()),
            format!("[{h},{w}]"),
        ));
    }
    let out_grid = plan.output_grid()?;
    let mut out = Tensor::zeros([n, op.qconv().c_out(), out_grid.h(), out_grid.w()]);
    let mut cropped = Tensor::zeros([0, 0, 0, 0]);
    let mut padded = Tensor::zeros([0, 0, 0, 0]);
    let mut block_out = Tensor::zeros([0, 0, 0, 0]);
    let mut scratch = QConvScratch::new();
    for row in 0..grid.num_rows() {
        for col in 0..grid.num_cols() {
            let b = grid.block(row, col);
            let ob = out_grid.block(row, col);
            input.crop_into(b.h0, b.w0, b.bh, b.bw, &mut cropped)?;
            plan.pad_block_into(&cropped, row, col, &mut padded)?;
            op.forward_prepadded_into(&padded, &mut block_out, &mut scratch)?;
            out.paste(&block_out, ob.h0, ob.w0)?;
        }
    }
    Ok(out)
}

/// A pipeline of fusion groups. Between groups the (now smaller) feature
/// map is concatenated in an on-chip extra buffer and re-gridded — the
/// fixed-blocking splice of Figure 4(a)/Figure 10.
#[derive(Debug, Clone)]
pub struct FusedPipeline {
    groups: Vec<FusedChain>,
}

impl FusedPipeline {
    /// Builds a pipeline from planned groups, validating that each group's
    /// output map feeds the next group's input map and that all groups
    /// execute at one precision ([`MemStats`] carries a single
    /// `bits_per_elem`, so a mixed float/quantized pipeline would
    /// misreport its traffic in bits).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on inconsistent group sizes
    /// and [`TensorError::InvalidParameter`] on mixed-precision groups.
    pub fn new(groups: Vec<FusedChain>) -> Result<Self, TensorError> {
        for pair in groups.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a.out_grid().h() != b.in_grid().h() || a.out_grid().w() != b.in_grid().w() {
                return Err(TensorError::shape_mismatch(
                    "FusedPipeline group boundary",
                    format!("[{},{}]", a.out_grid().h(), a.out_grid().w()),
                    format!("[{},{}]", b.in_grid().h(), b.in_grid().w()),
                ));
            }
            if a.act_bits() != b.act_bits() {
                return Err(TensorError::invalid(format!(
                    "FusedPipeline groups must share one precision, got {:?} then {:?} act bits",
                    a.act_bits(),
                    b.act_bits()
                )));
            }
        }
        Ok(Self { groups })
    }

    /// The fusion groups.
    pub fn groups(&self) -> &[FusedChain] {
        &self.groups
    }

    /// Consumes the pipeline, returning its groups (e.g. to re-splice with
    /// another group appended) without cloning the planned stages.
    pub fn into_groups(self) -> Vec<FusedChain> {
        self.groups
    }

    /// Executes all groups fused; intermediate maps between groups stay in
    /// the on-chip extra buffer, so off-chip traffic is still input + final
    /// output only.
    ///
    /// # Errors
    ///
    /// Propagates per-group execution errors.
    pub fn run_fused(&self, input: &Tensor) -> Result<(Tensor, MemStats), TensorError> {
        self.run_fused_threads(input, 1)
    }

    /// [`run_fused`](Self::run_fused) with each group's blocks dispatched
    /// across `threads` scoped workers (see
    /// [`FusedChain::run_fused_threads`]): groups still run in order — the
    /// splice is a sequencing point — so the output is bitwise identical
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates per-group execution errors.
    pub fn run_fused_threads(
        &self,
        input: &Tensor,
        threads: usize,
    ) -> Result<(Tensor, MemStats), TensorError> {
        let mut out = Tensor::default();
        let mut scratch = PipelineScratch::new();
        let stats = self.run_fused_into(input, threads, &mut out, &mut scratch)?;
        Ok((out, stats))
    }

    /// [`run_fused_threads`](Self::run_fused_threads) into caller-owned
    /// buffers: `out` receives the final group's output and `scratch`
    /// carries the per-block intermediates plus the two alternating
    /// group-boundary maps (the accelerator's extra buffer), so a caller
    /// that reuses both performs no steady-state allocation.
    ///
    /// [`MemStats`] stay exact and scheduling-invariant: off-chip traffic
    /// is the pipeline input + final output only, and the working-set peak
    /// adds the on-chip boundary maps alive around each group (its source
    /// map unless that is the off-chip input, and its destination map
    /// unless that is the off-chip output) to the group's own ping-pong
    /// block peak.
    ///
    /// # Errors
    ///
    /// Propagates per-group execution errors; an empty pipeline is
    /// rejected (it has no output map to produce).
    pub fn run_fused_into(
        &self,
        input: &Tensor,
        threads: usize,
        out: &mut Tensor,
        scratch: &mut PipelineScratch,
    ) -> Result<MemStats, TensorError> {
        let Some(last) = self.groups.len().checked_sub(1) else {
            return Err(TensorError::invalid("cannot run an empty FusedPipeline"));
        };
        let mut stats = MemStats {
            peak_working_elems: 0,
            offchip_elems: input.shape().numel(),
            bits_per_elem: self.groups.iter().find_map(FusedChain::act_bits).unwrap_or(32),
        };
        let PipelineScratch { block, ping, pong } = scratch;
        for (idx, group) in self.groups.iter().enumerate() {
            // Source: the pipeline input for the first group, the previous
            // group's boundary map (in `ping`) afterwards. Destination: the
            // caller's output for the last group, `pong` otherwise.
            let gs = match (idx == 0, idx == last) {
                (true, true) => group.run_fused_into(input, threads, out, block)?,
                (true, false) => group.run_fused_into(input, threads, pong, block)?,
                (false, true) => group.run_fused_into(ping, threads, out, block)?,
                (false, false) => group.run_fused_into(ping, threads, pong, block)?,
            };
            let src_elems = if idx == 0 { 0 } else { ping.shape().numel() };
            let dst_elems = if idx == last { 0 } else { pong.shape().numel() };
            stats.peak_working_elems =
                stats.peak_working_elems.max(gs.peak_working_elems + src_elems + dst_elems);
            std::mem::swap(ping, pong);
        }
        stats.offchip_elems += out.shape().numel();
        Ok(stats)
    }

    /// Executes all groups layer-by-layer (conventional dataflow).
    ///
    /// # Errors
    ///
    /// Propagates per-group execution errors.
    pub fn run_layerwise(&self, input: &Tensor) -> Result<(Tensor, MemStats), TensorError> {
        let mut cur = input.clone();
        let mut stats = MemStats {
            peak_working_elems: 0,
            offchip_elems: input.shape().numel(),
            bits_per_elem: self.groups.iter().find_map(FusedChain::act_bits).unwrap_or(32),
        };
        let last = self.groups.len().saturating_sub(1);
        for (idx, group) in self.groups.iter().enumerate() {
            let (next, gs) = group.run_layerwise(&cur)?;
            stats.peak_working_elems = stats.peak_working_elems.max(gs.peak_working_elems);
            // Group outputs also round-trip through DRAM layer-wise.
            stats.offchip_elems += gs.offchip_elems - cur.shape().numel() - next.shape().numel()
                + if idx == last { next.shape().numel() } else { 2 * next.shape().numel() };
            cur = next;
        }
        Ok((cur, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::BlockingPattern;
    use bconv_tensor::conv::ConvGeom;
    use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};

    fn conv(c_in: usize, c_out: usize, seed: u64) -> Conv2d {
        he_conv2d(c_in, c_out, ConvGeom::same(3), 1, &mut seeded_rng(seed)).unwrap()
    }

    fn three_layer_chain(grid: BlockGrid) -> FusedChain {
        // The Figure 2(b) scenario: three consecutive 3x3 convolutions.
        FusedChain::plan(
            vec![
                ChainOp::conv(conv(2, 4, 1)),
                ChainOp::Relu,
                ChainOp::conv(conv(4, 4, 2)),
                ChainOp::Relu,
                ChainOp::conv(conv(4, 2, 3)),
            ],
            grid,
            PadMode::Zero,
        )
        .unwrap()
    }

    #[test]
    fn fused_equals_layerwise_exactly() {
        let grid = BlockGrid::from_pattern(8, 8, BlockingPattern::hierarchical(2)).unwrap();
        let chain = three_layer_chain(grid);
        let input = uniform_tensor([1, 2, 8, 8], -1.0, 1.0, &mut seeded_rng(4));
        let (fused, _) = chain.run_fused(&input).unwrap();
        let (layerwise, _) = chain.run_layerwise(&input).unwrap();
        assert!(fused.approx_eq(&layerwise, 1e-5).unwrap());
    }

    #[test]
    fn fused_eliminates_intermediate_offchip_traffic() {
        let grid = BlockGrid::from_pattern(8, 8, BlockingPattern::hierarchical(2)).unwrap();
        let chain = three_layer_chain(grid);
        let input = uniform_tensor([1, 2, 8, 8], -1.0, 1.0, &mut seeded_rng(5));
        let (_, fs) = chain.run_fused(&input).unwrap();
        let (_, ls) = chain.run_layerwise(&input).unwrap();
        // Fused: input + output only.
        assert_eq!(fs.offchip_elems, 2 * 8 * 8 + 2 * 8 * 8);
        // Layer-wise: input + output + 2x both intermediates (4ch 8x8 each).
        assert_eq!(ls.offchip_elems, 2 * 64 + 2 * 64 + 2 * (4 * 64) + 2 * (4 * 64));
        assert!(fs.offchip_elems < ls.offchip_elems);
    }

    #[test]
    fn fused_working_set_is_block_sized() {
        let grid = BlockGrid::from_pattern(16, 16, BlockingPattern::hierarchical(4)).unwrap();
        let chain = FusedChain::plan(
            vec![ChainOp::conv(conv(2, 2, 7)), ChainOp::conv(conv(2, 2, 8))],
            grid,
            PadMode::Zero,
        )
        .unwrap();
        let input = uniform_tensor([1, 2, 16, 16], -1.0, 1.0, &mut seeded_rng(9));
        let (_, fs) = chain.run_fused(&input).unwrap();
        let (_, ls) = chain.run_layerwise(&input).unwrap();
        // Fused working set: two 4x4x2 block buffers = 64 elements,
        // vs layer-wise two full 16x16x2 maps = 1024.
        assert_eq!(fs.peak_working_elems, 2 * (2 * 4 * 4));
        assert_eq!(ls.peak_working_elems, 2 * (2 * 16 * 16));
    }

    #[test]
    fn pooling_inside_a_fused_group() {
        let grid = BlockGrid::from_pattern(8, 8, BlockingPattern::hierarchical(2)).unwrap();
        let chain = FusedChain::plan(
            vec![
                ChainOp::conv(conv(1, 2, 11)),
                ChainOp::Relu,
                ChainOp::MaxPool { k: 2 },
                ChainOp::conv(conv(2, 1, 12)),
            ],
            grid,
            PadMode::Zero,
        )
        .unwrap();
        let input = uniform_tensor([1, 1, 8, 8], -1.0, 1.0, &mut seeded_rng(13));
        let (fused, _) = chain.run_fused(&input).unwrap();
        let (layerwise, _) = chain.run_layerwise(&input).unwrap();
        assert_eq!(fused.shape().dims(), [1, 1, 4, 4]);
        assert!(fused.approx_eq(&layerwise, 1e-5).unwrap());
    }

    #[test]
    fn strided_conv_in_chain_is_rejected() {
        let grid = BlockGrid::single(8, 8);
        let mut rng = seeded_rng(14);
        let strided = he_conv2d(1, 1, ConvGeom::new(3, 2, 1), 1, &mut rng).unwrap();
        assert!(FusedChain::plan(vec![ChainOp::conv(strided)], grid, PadMode::Zero).is_err());
    }

    #[test]
    fn pipeline_regrids_between_groups() {
        // Group 1: conv+pool under 4x4 blocks of an 16x16 map -> 8x8 map of
        // 2x2 blocks; splice into a single block for group 2 (Figure 10).
        let g1_grid = BlockGrid::from_pattern(16, 16, BlockingPattern::fixed(4)).unwrap();
        let g1 = FusedChain::plan(
            vec![ChainOp::conv(conv(1, 2, 21)), ChainOp::MaxPool { k: 2 }],
            g1_grid,
            PadMode::Zero,
        )
        .unwrap();
        let g2_grid = g1.out_grid().clone().merge(4).unwrap();
        assert_eq!(g2_grid.num_blocks(), 1);
        let g2 =
            FusedChain::plan(vec![ChainOp::conv(conv(2, 1, 22))], g2_grid, PadMode::Zero).unwrap();
        let pipeline = FusedPipeline::new(vec![g1, g2]).unwrap();
        let input = uniform_tensor([1, 1, 16, 16], -1.0, 1.0, &mut seeded_rng(23));
        let (fused, fs) = pipeline.run_fused(&input).unwrap();
        let (layerwise, ls) = pipeline.run_layerwise(&input).unwrap();
        assert!(fused.approx_eq(&layerwise, 1e-5).unwrap());
        assert!(fs.offchip_elems < ls.offchip_elems);
        // Fused pipeline off-chip = input + final output only.
        assert_eq!(fs.offchip_elems, 16 * 16 + 8 * 8);
    }

    #[test]
    fn from_planned_reuses_trial_solves_bitwise() {
        // Assembling a chain from pre-solved BlockConv2d stages (the
        // planner's trial-walk artifacts) must execute identically to
        // re-solving through plan().
        let grid = BlockGrid::from_pattern(8, 8, BlockingPattern::hierarchical(2)).unwrap();
        let c1 = Arc::new(conv(1, 2, 61));
        let c2 = Arc::new(conv(2, 1, 62));
        let b1 = BlockConv2d::plan(Arc::clone(&c1), grid.clone(), PadMode::Zero).unwrap();
        let pooled = b1.output_grid().unwrap().downscale(2).unwrap();
        let b2 = BlockConv2d::plan(Arc::clone(&c2), pooled, PadMode::Zero).unwrap();
        let planned = FusedChain::from_planned(
            vec![
                PlannedOp::Conv(b1),
                PlannedOp::Relu,
                PlannedOp::MaxPool { k: 2 },
                PlannedOp::Conv(b2),
            ],
            grid.clone(),
        )
        .unwrap();
        let solved = FusedChain::plan(
            vec![ChainOp::Conv(c1), ChainOp::Relu, ChainOp::MaxPool { k: 2 }, ChainOp::Conv(c2)],
            grid,
            PadMode::Zero,
        )
        .unwrap();
        let input = uniform_tensor([1, 1, 8, 8], -1.0, 1.0, &mut seeded_rng(63));
        let (a, sa) = planned.run_fused(&input).unwrap();
        let (b, sb) = solved.run_fused(&input).unwrap();
        assert_eq!(a.data(), b.data());
        assert_eq!(sa, sb);
    }

    #[test]
    fn from_planned_rejects_grid_discontinuity() {
        // A conv solved on the wrong grid cannot silently join a chain.
        let grid = BlockGrid::from_pattern(8, 8, BlockingPattern::hierarchical(2)).unwrap();
        let other = BlockGrid::single(8, 8);
        let bconv = BlockConv2d::plan(conv(1, 1, 64), other, PadMode::Zero).unwrap();
        assert!(FusedChain::from_planned(vec![PlannedOp::Conv(bconv)], grid).is_err());
    }

    #[test]
    fn pipeline_scratch_execution_is_thread_invariant() {
        let g1_grid = BlockGrid::from_pattern(16, 16, BlockingPattern::fixed(4)).unwrap();
        let g1 = FusedChain::plan(
            vec![ChainOp::conv(conv(1, 2, 71)), ChainOp::MaxPool { k: 2 }],
            g1_grid,
            PadMode::Zero,
        )
        .unwrap();
        let g2_grid = g1.out_grid().clone().merge(2).unwrap();
        let g2 =
            FusedChain::plan(vec![ChainOp::conv(conv(2, 1, 72))], g2_grid, PadMode::Zero).unwrap();
        let pipeline = FusedPipeline::new(vec![g1, g2]).unwrap();
        let input = uniform_tensor([1, 1, 16, 16], -1.0, 1.0, &mut seeded_rng(73));
        let (serial, ss) = pipeline.run_fused(&input).unwrap();
        let mut scratch = PipelineScratch::new();
        for threads in [1usize, 2, 8] {
            let mut out = Tensor::default();
            // Reusing one scratch across runs and thread counts must not
            // leak state into outputs or stats.
            let stats = pipeline.run_fused_into(&input, threads, &mut out, &mut scratch).unwrap();
            assert_eq!(out.data(), serial.data(), "threads={threads}");
            assert_eq!(stats, ss, "threads={threads}");
        }
    }

    #[test]
    fn empty_pipeline_is_rejected_at_run() {
        let p = FusedPipeline::new(Vec::new()).unwrap();
        assert!(p.run_fused(&Tensor::zeros([1, 1, 4, 4])).is_err());
    }

    /// Per-tensor abs-max params, as a calibration pass would freeze them.
    fn calibrated(t: &Tensor, bits: u8) -> QParams {
        let m = t.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
        QParams::from_abs_max(m, bits)
    }

    #[test]
    fn quantized_chain_is_schedule_invariant_and_tracks_float() {
        let grid = BlockGrid::from_pattern(8, 8, BlockingPattern::hierarchical(2)).unwrap();
        let ops = vec![ChainOp::conv(conv(2, 4, 31)), ChainOp::Relu, ChainOp::conv(conv(4, 2, 32))];
        let input = uniform_tensor([1, 2, 8, 8], -1.0, 1.0, &mut seeded_rng(33));
        let float_chain = FusedChain::plan(ops.clone(), grid.clone(), PadMode::Zero).unwrap();
        assert_eq!(float_chain.act_bits(), None);
        let (float_out, fs) = float_chain.run_fused(&input).unwrap();
        // Calibrate each conv stage's input from the float path.
        let head = FusedChain::plan(ops[..2].to_vec(), grid.clone(), PadMode::Zero).unwrap();
        let (mid, _) = head.run_fused(&input).unwrap();
        let params = [calibrated(&input, 8), calibrated(&mid, 8)];
        let qchain = FusedChain::plan_quantized(ops, grid, PadMode::Zero, 8, &params).unwrap();
        assert_eq!(qchain.act_bits(), Some(8));
        let (q_fused, qs) = qchain.run_fused(&input).unwrap();
        let (q_layer, _) = qchain.run_layerwise(&input).unwrap();
        assert_eq!(
            q_fused.data(),
            q_layer.data(),
            "quantized fusion must be a schedule change only"
        );
        // Same element traffic, narrower words: bits shrink 32 -> 8.
        assert_eq!(qs.offchip_elems, fs.offchip_elems);
        assert_eq!(qs.bits_per_elem, 8);
        assert_eq!(fs.bits_per_elem, 32);
        assert_eq!(qs.offchip_bits(), qs.offchip_elems as u64 * 8);
        assert_eq!(fs.offchip_bits(), 4 * qs.offchip_bits());
        let mag = float_out.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
        let err = float_out.max_abs_diff(&q_fused).unwrap() / mag;
        assert!(err < 0.1, "8-bit quantized chain error too large: {err}");
    }

    #[test]
    fn quantized_chain_honors_block_pad_mode() {
        // The motivating bug: quantized block execution under replicate
        // padding must track the replicate float chain, not zero padding.
        let grid = BlockGrid::from_pattern(8, 8, BlockingPattern::hierarchical(2)).unwrap();
        let cv = conv(1, 1, 35);
        let input = uniform_tensor([1, 1, 8, 8], 0.5, 1.0, &mut seeded_rng(36));
        let params = [calibrated(&input, 8)];
        let run = |mode| {
            let chain = FusedChain::plan_quantized(
                vec![ChainOp::conv(cv.clone())],
                grid.clone(),
                mode,
                8,
                &params,
            )
            .unwrap();
            chain.run_fused(&input).unwrap().0
        };
        let float_rep =
            FusedChain::plan(vec![ChainOp::conv(cv.clone())], grid.clone(), PadMode::Replicate)
                .unwrap()
                .run_fused(&input)
                .unwrap()
                .0;
        let mag = float_rep.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
        let err_rep = float_rep.max_abs_diff(&run(PadMode::Replicate)).unwrap() / mag;
        let err_zero = float_rep.max_abs_diff(&run(PadMode::Zero)).unwrap() / mag;
        assert!(err_rep < 0.05, "replicate quant chain diverges: {err_rep}");
        assert!(err_zero > 4.0 * err_rep, "zero padding should visibly differ");
    }

    #[test]
    fn plan_quantized_validates_param_count() {
        let grid = BlockGrid::single(8, 8);
        let ops = vec![ChainOp::conv(conv(2, 2, 41))];
        let p = QParams::from_abs_max(1.0, 8);
        assert!(
            FusedChain::plan_quantized(ops.clone(), grid.clone(), PadMode::Zero, 8, &[]).is_err()
        );
        assert!(FusedChain::plan_quantized(ops, grid, PadMode::Zero, 8, &[p, p]).is_err());
    }

    #[test]
    fn pipeline_rejects_mixed_precision_groups() {
        // One MemStats word width per pipeline: float + quantized groups
        // cannot share a run without misreporting offchip_bits.
        let f = FusedChain::plan(
            vec![ChainOp::conv(conv(1, 1, 51))],
            BlockGrid::single(8, 8),
            PadMode::Zero,
        )
        .unwrap();
        let q = FusedChain::plan_quantized(
            vec![ChainOp::conv(conv(1, 1, 52))],
            BlockGrid::single(8, 8),
            PadMode::Zero,
            8,
            &[QParams::from_abs_max(1.0, 8)],
        )
        .unwrap();
        assert!(FusedPipeline::new(vec![f.clone(), q]).is_err());
        assert!(FusedPipeline::new(vec![f.clone(), f]).is_ok());
    }

    #[test]
    fn pipeline_rejects_mismatched_groups() {
        let g1 = FusedChain::plan(
            vec![ChainOp::MaxPool { k: 2 }],
            BlockGrid::single(8, 8),
            PadMode::Zero,
        )
        .unwrap();
        let g2 =
            FusedChain::plan(vec![ChainOp::Relu], BlockGrid::single(8, 8), PadMode::Zero).unwrap();
        assert!(FusedPipeline::new(vec![g1, g2]).is_err());
    }
}
