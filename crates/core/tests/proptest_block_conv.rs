//! Property-based tests of block convolution's core invariants.

use bconv_core::analysis::{block_spatial_kernel_ops, spatial_kernel_ops};
use bconv_core::blocking::{BlockGrid, BlockingPattern};
use bconv_core::BlockConv2d;
use bconv_tensor::conv::ConvGeom;
use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};
use bconv_tensor::pad::PadMode;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocks of any valid grid tile the map exactly, with no overlap.
    #[test]
    fn grid_partitions_exactly(
        h in 1usize..64,
        w in 1usize..64,
        th in 1usize..32,
        tw in 1usize..32,
    ) {
        let grid = BlockGrid::from_pattern(h, w, BlockingPattern::Fixed { th, tw }).unwrap();
        let mut covered = vec![false; h * w];
        for b in grid.blocks() {
            for hh in b.h0..b.h0 + b.bh {
                for ww in b.w0..b.w0 + b.bw {
                    prop_assert!(!covered[hh * w + ww], "block overlap at ({hh},{ww})");
                    covered[hh * w + ww] = true;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// Hierarchical grids always produce exactly gh*gw blocks.
    #[test]
    fn hierarchical_block_count(
        h in 4usize..64,
        w in 4usize..64,
        gh in 1usize..4,
        gw in 1usize..4,
    ) {
        let grid =
            BlockGrid::from_pattern(h, w, BlockingPattern::Hierarchical { gh, gw }).unwrap();
        prop_assert_eq!(grid.num_blocks(), gh * gw);
    }

    /// Block convolution preserves the output size of the "same"
    /// convolution for arbitrary grids (Equation 2's defining property),
    /// preserves FLOPs (Figure 3), and matches the dense convolution
    /// exactly on block-interior pixels.
    #[test]
    fn block_conv_invariants(
        h in 6usize..24,
        w in 6usize..24,
        gh in 1usize..3,
        gw in 1usize..3,
        c_in in 1usize..3,
        c_out in 1usize..3,
        seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(seed);
        let conv = he_conv2d(c_in, c_out, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, c_in, h, w], -1.0, 1.0, &mut rng);
        let dense = conv.forward(&input).unwrap();
        let pattern = BlockingPattern::Hierarchical { gh, gw };
        let bconv = BlockConv2d::from_pattern(conv, h, w, pattern, PadMode::Zero).unwrap();
        let blocked = bconv.forward(&input).unwrap();

        // 1. Output size unchanged.
        prop_assert_eq!(blocked.shape().dims(), dense.shape().dims());

        // 2. Spatial op count unchanged (Figure 3 parity).
        prop_assert_eq!(
            block_spatial_kernel_ops(&bconv).unwrap(),
            spatial_kernel_ops(h, w, c_in)
        );

        // 3. Interior pixels bit-match the dense convolution.
        let grid = bconv.output_grid().unwrap();
        let interior = |pos: usize, len: usize, segs: &[(usize, usize)]| -> bool {
            segs.iter().any(|&(start, size)| {
                pos >= start
                    && pos < start + size
                    && (start == 0 || pos > start)
                    && (start + size == len || pos + 1 < start + size)
            })
        };
        for c in 0..c_out {
            for hh in 0..h {
                if !interior(hh, h, grid.row_segments()) {
                    continue;
                }
                for ww in 0..w {
                    if !interior(ww, w, grid.col_segments()) {
                        continue;
                    }
                    let d = (dense.at(0, c, hh, ww) - blocked.at(0, c, hh, ww)).abs();
                    prop_assert!(d < 1e-4, "interior pixel ({c},{hh},{ww}) diff {d}");
                }
            }
        }
    }

    /// Pointwise (1x1) block convolution is *exactly* the dense pointwise
    /// convolution for any pattern (paper §II-C).
    #[test]
    fn pointwise_exactness(
        h in 2usize..20,
        w in 2usize..20,
        gh in 1usize..4,
        gw in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(gh <= h && gw <= w);
        let mut rng = seeded_rng(seed);
        let conv = he_conv2d(2, 3, ConvGeom::new(1, 1, 0), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 2, h, w], -1.0, 1.0, &mut rng);
        let dense = conv.forward(&input).unwrap();
        let pattern = BlockingPattern::Hierarchical { gh, gw };
        let bconv = BlockConv2d::from_pattern(conv, h, w, pattern, PadMode::Zero).unwrap();
        let blocked = bconv.forward(&input).unwrap();
        prop_assert!(dense.approx_eq(&blocked, 1e-5).unwrap());
    }
}
