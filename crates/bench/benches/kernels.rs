//! Criterion kernel benchmarks: conventional vs block convolution (FLOP
//! parity means comparable runtime), padding-mode overhead (paper §II-F:
//! block padding costs are negligible), fused vs layer-wise chain
//! execution, quantized convolution, and DSE speed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bconv_accel::dse::explore_vgg16;
use bconv_accel::fusion::vgg16_shapes;
use bconv_accel::platform::zc706;
use bconv_core::blocking::BlockingPattern;
use bconv_core::BlockConv2d;
use bconv_graph::{Graph, LowerOptions, Planner, PlannerOptions, Segment};
use bconv_models::builder::{conv, maxpool, NetBuilder};
use bconv_models::ActShape;
use bconv_quant::qconv::QConv2d;
use bconv_quant::QParams;
use bconv_tensor::conv::{Conv2d, ConvGeom};
use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};
use bconv_tensor::kernel::{ConvScratch, KernelKind};
use bconv_tensor::pad::{pad2d, PadMode};
use bconv_tensor::Tensor;

fn conv_fixture(c: usize, h: usize) -> (Conv2d, Tensor) {
    let mut rng = seeded_rng(1);
    let conv = he_conv2d(c, c, ConvGeom::same(3), 1, &mut rng).unwrap();
    let input = uniform_tensor([1, c, h, h], -1.0, 1.0, &mut rng);
    (conv, input)
}

fn bench_conv_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_kernels");
    for (ch, res) in [(16usize, 32usize), (32, 56)] {
        let (conv, input) = conv_fixture(ch, res);
        group.bench_function(format!("dense_{ch}x{res}"), |b| {
            b.iter(|| black_box(conv.forward(black_box(&input)).unwrap()))
        });
        let bconv = BlockConv2d::from_pattern(
            conv.clone(),
            res,
            res,
            BlockingPattern::hierarchical(2),
            PadMode::Zero,
        )
        .unwrap();
        group.bench_function(format!("block_h2_{ch}x{res}"), |b| {
            b.iter(|| black_box(bconv.forward(black_box(&input)).unwrap()))
        });
    }
    group.finish();
}

fn bench_kernel_impls(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_impls");
    for (ch, res) in [(16usize, 32usize), (32, 56)] {
        let (conv, input) = conv_fixture(ch, res);
        let padded = pad2d(&input, 1, 1, PadMode::Zero).unwrap();
        for kind in [KernelKind::Direct, KernelKind::Im2colGemm] {
            let mut out = Tensor::default();
            let mut scratch = ConvScratch::new();
            group.bench_function(format!("{}_{ch}x{res}", kind.name()), |b| {
                b.iter(|| {
                    conv.forward_prepadded_into(black_box(&padded), kind, &mut out, &mut scratch)
                        .unwrap();
                    black_box(out.data()[0])
                })
            });
        }
    }
    // Depthwise: the measurement behind Auto's choice of GEMM even at m=1.
    let mut rng = seeded_rng(5);
    let dw = he_conv2d(32, 32, ConvGeom::same(3), 32, &mut rng).unwrap();
    let input = uniform_tensor([1, 32, 32, 32], -1.0, 1.0, &mut rng);
    let padded = pad2d(&input, 1, 1, PadMode::Zero).unwrap();
    for kind in [KernelKind::Direct, KernelKind::Im2colGemm] {
        let mut out = Tensor::default();
        let mut scratch = ConvScratch::new();
        group.bench_function(format!("{}_depthwise_32x32", kind.name()), |b| {
            b.iter(|| {
                dw.forward_prepadded_into(black_box(&padded), kind, &mut out, &mut scratch)
                    .unwrap();
                black_box(out.data()[0])
            })
        });
    }
    group.finish();
}

fn bench_padding_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("padding_modes");
    let (conv, input) = conv_fixture(16, 32);
    for mode in PadMode::ALL {
        let bconv =
            BlockConv2d::from_pattern(conv.clone(), 32, 32, BlockingPattern::hierarchical(2), mode)
                .unwrap();
        group.bench_function(mode.name(), |b| {
            b.iter(|| black_box(bconv.forward(black_box(&input)).unwrap()))
        });
    }
    group.finish();
}

fn bench_fused_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_chain");
    // The chain is compiled by the Session planner from a descriptor, the
    // same path production inference takes.
    let mut b = NetBuilder::new("bench-chain", ActShape { c: 8, h: 32, w: 32 });
    b.push("conv1", conv(3, 1, 1, 8, 16));
    b.push("conv2", conv(3, 1, 1, 16, 16));
    b.push("pool", maxpool(2, 2, 0));
    b.push("conv3", conv(3, 1, 1, 16, 16));
    let graph = Graph::lower(&b.build(), &LowerOptions { seed: 2, relu_after_conv: true }).unwrap();
    let plan = Planner::new(PlannerOptions::default()).plan(&graph).unwrap();
    let Segment::Fused { chain, .. } = &plan.segments()[0] else {
        panic!("planner should fuse the whole chain");
    };
    let input = uniform_tensor([1, 8, 32, 32], -1.0, 1.0, &mut seeded_rng(2));
    group.bench_function("fused", |b| {
        b.iter(|| black_box(chain.run_fused(black_box(&input)).unwrap()))
    });
    group.bench_function("layerwise", |b| {
        b.iter(|| black_box(chain.run_layerwise(black_box(&input)).unwrap()))
    });
    group.finish();
}

fn bench_quantized_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized_conv");
    let (conv, input) = conv_fixture(16, 32);
    let qconv = QConv2d::from_conv(&conv, 8).unwrap();
    let act = QParams::from_abs_max(1.0, 8);
    group.bench_function("float", |b| {
        b.iter(|| black_box(conv.forward(black_box(&input)).unwrap()))
    });
    group.bench_function("int8", |b| {
        b.iter(|| black_box(qconv.forward(black_box(&input), act, PadMode::Zero).unwrap()))
    });
    group.finish();
}

fn bench_dse(c: &mut Criterion) {
    let shapes = vgg16_shapes();
    let platform = zc706();
    c.bench_function("dse_explore_vgg16", |b| {
        b.iter(|| black_box(explore_vgg16(&shapes, &platform, 8, 4).len()))
    });
}

criterion_group!(
    benches,
    bench_conv_kernels,
    bench_kernel_impls,
    bench_padding_modes,
    bench_fused_chain,
    bench_quantized_conv,
    bench_dse
);
criterion_main!(benches);
