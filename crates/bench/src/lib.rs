//! Shared helpers for the experiment harness binaries (one per paper table
//! and figure — see DESIGN.md §4 for the full index) and the Criterion
//! benches.

#![forbid(unsafe_code)]

pub mod check;

use bconv_train::layers::SgdConfig;
use bconv_train::trainer::TrainConfig;

/// Times `reps` invocations of `f`, returning `(median_us, min_us)`.
///
/// The median is the honest "typical run" number the bench tables print;
/// the minimum is the noise-robust capability estimator the CI regression
/// gate compares (external load only ever adds time, so best-of-reps is
/// stable across runs where the median of a small sample is not).
pub fn time_us(mut f: impl FnMut(), reps: usize) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], samples[0])
}

/// [`time_us`] over `reps` session runs with one warm-up off the clock
/// (growing scratch buffers and faulting in weights) — the shared timing
/// policy of every bench binary feeding the regression gate.
pub fn session_times(
    session: &bconv_graph::Session,
    input: &bconv_tensor::Tensor,
    reps: usize,
) -> (f64, f64) {
    session.run(input).expect("bench warm-up run");
    time_us(
        || {
            std::hint::black_box(session.run(input).expect("bench run"));
        },
        reps,
    )
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a horizontal rule sized to `width`.
pub fn hline(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Standard training configuration for the small classifiers
/// (Tables I/II, Figures 5–7). Adam: the plain small networks need its
/// per-parameter scaling to escape the uniform-prediction plateau reliably
/// across seeds (30/30 in the calibration sweep vs ~60% with SGD).
pub fn classifier_config() -> TrainConfig {
    TrainConfig {
        steps: 400,
        batch: 16,
        sgd: SgdConfig { lr: 0.005, adam: true, ..SgdConfig::default() },
        lr_halve_every: 150,
    }
}

/// Shorter fine-tuning configuration (the paper fine-tunes from the
/// pre-trained baseline with unchanged hyperparameters, at a lower rate).
pub fn finetune_config() -> TrainConfig {
    TrainConfig {
        steps: 200,
        batch: 16,
        sgd: SgdConfig { lr: 0.002, adam: true, ..SgdConfig::default() },
        lr_halve_every: 80,
    }
}

/// Training configuration for the small VDSR (Table IV).
pub fn vdsr_config() -> TrainConfig {
    TrainConfig {
        steps: 300,
        batch: 8,
        sgd: SgdConfig { lr: 0.05, weight_decay: 1e-5, ..SgdConfig::default() },
        lr_halve_every: 120,
    }
}

/// Training configuration for the small detector (Table V, Figure 8).
pub fn detector_config() -> TrainConfig {
    TrainConfig {
        steps: 400,
        batch: 16,
        sgd: SgdConfig { lr: 0.02, ..SgdConfig::default() },
        lr_halve_every: 150,
    }
}

/// Patch size for the super-resolution experiments: the paper trains on
/// 41×41 Set5 patches; we use 24 so scales 2/3/4 divide exactly and the
/// fixed-irregular split (F16 → 16+8) mirrors the paper's F28 → 28+13.
pub const SR_PATCH: usize = 24;

/// Evaluation sample counts for classification.
pub const EVAL_SAMPLES: usize = 256;

/// Number of held-out samples for detection evaluation.
pub const DET_EVAL_SAMPLES: usize = 128;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_sane() {
        assert!(classifier_config().steps > finetune_config().steps);
        assert_eq!(SR_PATCH % 2, 0);
        assert_eq!(SR_PATCH % 3, 0);
        assert_eq!(SR_PATCH % 4, 0);
    }
}
