//! Benchmark regression checking: compare a fresh `BENCH_*.json` run
//! against the committed baseline and flag throughput regressions and
//! off-chip-traffic increases — the logic behind the `bench_check` CI
//! gate.
//!
//! The workspace has no crates.io access (so no serde); the bench files
//! are flat JSON written by our own binaries, parsed here with a minimal
//! recursive-descent reader.

use std::fmt;

/// A parsed JSON value (the subset our bench files use — which is all of
/// JSON except exotic number forms).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64; bench files stay well within exact
    /// integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with byte offset) on malformed
    /// input or trailing garbage.
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// What the checker found for one baseline entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Throughput regressed beyond the tolerance — fails the gate.
    Regression,
    /// Off-chip traffic increased (any amount) — fails the gate.
    OffchipIncrease,
    /// A baseline entry has no fresh counterpart and no skip flag excuses
    /// it — fails the gate (silent coverage loss).
    MissingEntry,
    /// A baseline entry was skipped-and-flagged by the fresh run (e.g.
    /// threaded configs on a 1-core host) — exempt, reported for
    /// visibility.
    Skipped,
}

impl FindingKind {
    /// Whether this finding fails the gate.
    pub fn is_failure(&self) -> bool {
        !matches!(self, Self::Skipped)
    }
}

/// One checker finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Bench name (e.g. `kernels`).
    pub bench: String,
    /// Entry key within the bench (joined identity fields).
    pub entry: String,
    /// What happened.
    pub kind: FindingKind,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.kind {
            FindingKind::Regression => "REGRESSION",
            FindingKind::OffchipIncrease => "OFFCHIP-INCREASE",
            FindingKind::MissingEntry => "MISSING",
            FindingKind::Skipped => "skipped",
        };
        write!(f, "[{tag}] {}/{}: {}", self.bench, self.entry, self.detail)
    }
}

/// Fields that identify an entry across runs, in priority order.
const IDENTITY_KEYS: [&str; 6] =
    ["network", "name", "backend", "cost_model", "workers_requested", "streams"];

/// Joined identity of a result entry.
fn entry_key(entry: &Json) -> String {
    let mut parts = Vec::new();
    for key in IDENTITY_KEYS {
        if let Some(v) = entry.get(key) {
            match v {
                Json::Str(s) => parts.push(s.clone()),
                Json::Num(n) => parts.push(format!("{n}")),
                other => parts.push(format!("{other:?}")),
            }
        }
    }
    if parts.is_empty() {
        "<unkeyed>".to_string()
    } else {
        parts.join("/")
    }
}

/// True when the fresh run declared any top-level `*_skipped` flag (the
/// skip-and-flag convention of `bench_kernels`/`bench_serve` on hosts that
/// cannot run a configuration meaningfully).
fn fresh_declares_skips(fresh: &Json) -> bool {
    match fresh {
        Json::Obj(fields) => {
            fields.iter().any(|(k, v)| k.ends_with("_skipped") && v.as_bool().unwrap_or(false))
        }
        _ => false,
    }
}

/// True when a baseline entry is a parallel configuration — the only kind
/// a host-capability skip flag can legitimately excuse. Serial entries
/// going missing is coverage loss no matter what the fresh run skipped.
fn entry_is_parallel(entry: &Json) -> bool {
    ["threads_requested", "workers_requested"]
        .iter()
        .filter_map(|k| entry.get(k).and_then(Json::as_f64))
        .any(|n| n > 1.0)
}

/// Compares a fresh bench document against its baseline.
///
/// Gate rules, per baseline `results[]` entry (matched to fresh by its
/// identity fields):
///
/// * `min_us`/`median_us` growing beyond `tolerance_pct` →
///   [`FindingKind::Regression`];
/// * `throughput_rps` shrinking beyond `tolerance_pct` → regression;
/// * `offchip_bits` / `offchip_elems` increasing at all →
///   [`FindingKind::OffchipIncrease`] (these are deterministic);
/// * per-entry `"skipped": true` in the fresh run, or a missing fresh
///   *parallel* entry under a top-level `*_skipped` flag →
///   [`FindingKind::Skipped`] (exempt);
/// * a missing fresh entry otherwise → [`FindingKind::MissingEntry`].
///
/// Wall-clock metrics are only comparable between like hosts: when both
/// documents record a top-level `available_parallelism` and the values
/// differ, every timing comparison is skipped-and-flagged (one finding
/// per bench) while the deterministic metrics still gate.
///
/// Additionally, every baseline `batch_amortization[]` entry gates the
/// fresh run's `speedup` against an **absolute** floor of 1.0 on like
/// hosts: `run_batch` coalescing must never lose to per-request
/// submit/wait through the same engine. Cross-host the floor is
/// skipped-and-flagged; a baseline backend with no fresh amortization
/// entry is [`FindingKind::MissingEntry`] either way.
pub fn check_bench(bench: &str, baseline: &Json, fresh: &Json, tolerance_pct: f64) -> Vec<Finding> {
    let mut findings = Vec::new();
    let base_results = baseline.get("results").and_then(Json::as_array).unwrap_or(&[]);
    let fresh_results = fresh.get("results").and_then(Json::as_array).unwrap_or(&[]);
    let skips_declared = fresh_declares_skips(fresh);
    let finding = |entry: &str, kind, detail: String| Finding {
        bench: bench.to_string(),
        entry: entry.to_string(),
        kind,
        detail,
    };
    let host = |doc: &Json| doc.get("available_parallelism").and_then(Json::as_f64);
    let timing_comparable = match (host(baseline), host(fresh)) {
        (Some(b), Some(f)) if b != f => {
            findings.push(finding(
                "<host>",
                FindingKind::Skipped,
                format!(
                    "timing comparisons skipped: baseline host has {b} core(s), fresh host {f} \
                     (deterministic metrics still gated)"
                ),
            ));
            false
        }
        _ => true,
    };

    for base in base_results {
        let key = entry_key(base);
        let Some(new) = fresh_results.iter().find(|e| entry_key(e) == key) else {
            // A host-capability skip flag only excuses parallel configs;
            // a missing serial entry is silent coverage loss either way.
            let kind = if skips_declared && entry_is_parallel(base) {
                FindingKind::Skipped
            } else {
                FindingKind::MissingEntry
            };
            findings.push(finding(&key, kind, "no fresh entry for baseline config".into()));
            continue;
        };
        if new.get("skipped").and_then(Json::as_bool).unwrap_or(false) {
            findings.push(finding(&key, FindingKind::Skipped, "fresh run flagged skip".into()));
            continue;
        }
        // Lower-is-better timing. Prefer `min_us` (best-of-reps, robust
        // against external load, which only ever adds time) and fall back
        // to `median_us` for baselines that predate the field.
        let timing = timing_comparable.then_some(()).and_then(|()| {
            ["min_us", "median_us"].into_iter().find_map(|metric| {
                match (
                    base.get(metric).and_then(Json::as_f64),
                    new.get(metric).and_then(Json::as_f64),
                ) {
                    (Some(b), Some(f)) => Some((metric, b, f)),
                    _ => None,
                }
            })
        });
        if let Some((metric, b, f)) = timing {
            if b > 0.0 && f > b * (1.0 + tolerance_pct / 100.0) {
                findings.push(finding(
                    &key,
                    FindingKind::Regression,
                    format!("{metric} {b:.1} -> {f:.1} (> {tolerance_pct}% slower)"),
                ));
            }
        }
        // Higher-is-better throughput.
        if let (true, Some(b), Some(f)) = (
            timing_comparable,
            base.get("throughput_rps").and_then(Json::as_f64),
            new.get("throughput_rps").and_then(Json::as_f64),
        ) {
            if b > 0.0 && f < b * (1.0 - tolerance_pct / 100.0) {
                findings.push(finding(
                    &key,
                    FindingKind::Regression,
                    format!("throughput_rps {b:.1} -> {f:.1} (> {tolerance_pct}% drop)"),
                ));
            }
        }
        // Off-chip traffic is deterministic: any increase fails.
        for metric in ["offchip_bits", "offchip_elems"] {
            if let (Some(b), Some(f)) =
                (base.get(metric).and_then(Json::as_f64), new.get(metric).and_then(Json::as_f64))
            {
                if f > b {
                    findings.push(finding(
                        &key,
                        FindingKind::OffchipIncrease,
                        format!("{metric} {b} -> {f}"),
                    ));
                }
            }
        }
    }

    // Batch-amortization floor: unlike the relative gates above, this one
    // is absolute — a fresh speedup below 1.0 means batching made serving
    // slower than per-request submit/wait, which is a bug regardless of
    // what the baseline recorded.
    let base_amort = baseline.get("batch_amortization").and_then(Json::as_array).unwrap_or(&[]);
    let fresh_amort = fresh.get("batch_amortization").and_then(Json::as_array).unwrap_or(&[]);
    for base in base_amort {
        let key = format!("amortization/{}", entry_key(base));
        let Some(new) = fresh_amort.iter().find(|e| entry_key(e) == entry_key(base)) else {
            findings.push(finding(
                &key,
                FindingKind::MissingEntry,
                "no fresh amortization entry for baseline backend".into(),
            ));
            continue;
        };
        if !timing_comparable {
            findings.push(finding(
                &key,
                FindingKind::Skipped,
                "amortization floor not gated across unlike hosts".into(),
            ));
            continue;
        }
        match new.get("speedup").and_then(Json::as_f64) {
            Some(s) if s >= 1.0 => {}
            Some(s) => findings.push(finding(
                &key,
                FindingKind::Regression,
                format!(
                    "run_batch speedup {s:.3} < 1.0 — coalescing must not lose to \
                     per-request submit/wait"
                ),
            )),
            None => findings.push(finding(
                &key,
                FindingKind::MissingEntry,
                "fresh amortization entry lacks a speedup field".into(),
            )),
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(results: &str, extra: &str) -> Json {
        Json::parse(&format!("{{\"bench\": \"t\"{extra}, \"results\": [{results}]}}")).unwrap()
    }

    #[test]
    fn parser_reads_a_real_bench_document() {
        let j = Json::parse(
            r#"{
  "bench": "kernels",
  "reps": 30,
  "quick": false,
  "threaded_configs_skipped": true,
  "results": [
    {"name": "direct_t1", "median_us": 1228.8, "speedup_vs_direct_t1": 1.000,
     "output_matches_baseline": true},
    {"name": "gemm_t1", "median_us": 293.5, "negative": -4.2e-1, "nothing": null}
  ]
}"#,
        )
        .unwrap();
        assert_eq!(j.get("bench").and_then(Json::as_str), Some("kernels"));
        assert_eq!(j.get("reps").and_then(Json::as_f64), Some(30.0));
        let results = j.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].get("nothing"), Some(&Json::Null));
        assert_eq!(results[1].get("negative").and_then(Json::as_f64), Some(-0.42));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let j = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = doc(r#"{"name": "a", "median_us": 100.0}"#, "");
        let ok = doc(r#"{"name": "a", "median_us": 124.0}"#, "");
        let bad = doc(r#"{"name": "a", "median_us": 126.0}"#, "");
        assert!(check_bench("t", &base, &ok, 25.0).is_empty());
        let f = check_bench("t", &base, &bad, 25.0);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::Regression);
        assert!(f[0].kind.is_failure());
    }

    #[test]
    fn min_us_is_preferred_over_median_when_both_present() {
        // A noisy median with a stable minimum passes; a regressed minimum
        // fails regardless of the median.
        let base = doc(r#"{"name": "a", "median_us": 100.0, "min_us": 90.0}"#, "");
        let noisy = doc(r#"{"name": "a", "median_us": 400.0, "min_us": 95.0}"#, "");
        assert!(check_bench("t", &base, &noisy, 25.0).is_empty());
        let slow = doc(r#"{"name": "a", "median_us": 100.0, "min_us": 140.0}"#, "");
        assert_eq!(check_bench("t", &base, &slow, 25.0)[0].kind, FindingKind::Regression);
    }

    #[test]
    fn throughput_drop_beyond_tolerance_fails() {
        let base =
            doc(r#"{"backend": "blocked", "workers_requested": 2, "throughput_rps": 1000.0}"#, "");
        let ok =
            doc(r#"{"backend": "blocked", "workers_requested": 2, "throughput_rps": 760.0}"#, "");
        let bad =
            doc(r#"{"backend": "blocked", "workers_requested": 2, "throughput_rps": 740.0}"#, "");
        assert!(check_bench("t", &base, &ok, 25.0).is_empty());
        assert_eq!(check_bench("t", &base, &bad, 25.0)[0].kind, FindingKind::Regression);
    }

    #[test]
    fn any_offchip_increase_fails() {
        let base = doc(r#"{"name": "a", "offchip_bits": 1000, "offchip_elems": 10}"#, "");
        let same = doc(r#"{"name": "a", "offchip_bits": 1000, "offchip_elems": 10}"#, "");
        let worse = doc(r#"{"name": "a", "offchip_bits": 1001, "offchip_elems": 10}"#, "");
        assert!(check_bench("t", &base, &same, 25.0).is_empty());
        let f = check_bench("t", &base, &worse, 25.0);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::OffchipIncrease);
    }

    #[test]
    fn skip_and_flag_entries_are_exempt() {
        let base = doc(r#"{"name": "gemm_tN", "threads_requested": 8, "median_us": 50.0}"#, "");
        // Missing without a skip flag: coverage loss, fails.
        let missing = doc(r#"{"name": "direct_t1", "median_us": 10.0}"#, "");
        let f = check_bench("t", &base, &missing, 25.0);
        assert_eq!(f[0].kind, FindingKind::MissingEntry);
        assert!(f[0].kind.is_failure());
        // Missing parallel config under a declared top-level skip: exempt.
        let skipped = doc(
            r#"{"name": "direct_t1", "median_us": 10.0}"#,
            ", \"threaded_configs_skipped\": true",
        );
        let f = check_bench("t", &base, &skipped, 25.0);
        assert_eq!(f[0].kind, FindingKind::Skipped);
        assert!(!f[0].kind.is_failure());
        // Per-entry skip flag: exempt even if slower.
        let entry_skip = doc(
            r#"{"name": "gemm_tN", "threads_requested": 8, "median_us": 500.0, "skipped": true}"#,
            "",
        );
        let f = check_bench("t", &base, &entry_skip, 25.0);
        assert_eq!(f[0].kind, FindingKind::Skipped);
    }

    #[test]
    fn skip_flags_cannot_excuse_missing_serial_entries() {
        // A top-level host-capability skip must not silence the loss of a
        // serial (threads/workers = 1) config.
        let base = doc(r#"{"name": "gemm_t1", "threads_requested": 1, "median_us": 50.0}"#, "");
        let fresh = doc(
            r#"{"name": "direct_t1", "threads_requested": 1, "median_us": 10.0}"#,
            ", \"threaded_configs_skipped\": true",
        );
        let f = check_bench("t", &base, &fresh, 25.0);
        assert_eq!(f[0].kind, FindingKind::MissingEntry);
        assert!(f[0].kind.is_failure());
    }

    #[test]
    fn cross_host_runs_skip_timing_but_still_gate_offchip() {
        let base = doc(
            r#"{"name": "a", "min_us": 100.0, "offchip_bits": 1000}"#,
            ", \"available_parallelism\": 1",
        );
        // Different core count: a 10x slower timing is flagged skipped,
        // not failed...
        let slow = doc(
            r#"{"name": "a", "min_us": 1000.0, "offchip_bits": 1000}"#,
            ", \"available_parallelism\": 4",
        );
        let f = check_bench("t", &base, &slow, 25.0);
        assert!(f.iter().all(|x| x.kind == FindingKind::Skipped), "{f:?}");
        // ...but an off-chip increase still fails cross-host.
        let worse = doc(
            r#"{"name": "a", "min_us": 1000.0, "offchip_bits": 1001}"#,
            ", \"available_parallelism\": 4",
        );
        let f = check_bench("t", &base, &worse, 25.0);
        assert!(f.iter().any(|x| x.kind == FindingKind::OffchipIncrease));
        // Same core count: the timing gate is armed.
        let same_host = doc(
            r#"{"name": "a", "min_us": 1000.0, "offchip_bits": 1000}"#,
            ", \"available_parallelism\": 1",
        );
        let f = check_bench("t", &base, &same_host, 25.0);
        assert!(f.iter().any(|x| x.kind == FindingKind::Regression));
    }

    #[test]
    fn amortization_speedup_below_one_fails_on_like_hosts() {
        let amort = |speedup: f64| {
            format!(
                ", \"available_parallelism\": 1, \"batch_amortization\": \
                 [{{\"backend\": \"blocked\", \"batch\": 8, \"speedup\": {speedup}}}]"
            )
        };
        let base = doc("", &amort(1.05));
        let ok = doc("", &amort(1.01));
        assert!(check_bench("t", &base, &ok, 25.0).is_empty());
        // The floor is absolute: 0.95 fails even though it is within 25%
        // of the baseline's own figure.
        let bad = doc("", &amort(0.95));
        let f = check_bench("t", &base, &bad, 25.0);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::Regression);
        assert!(f[0].entry.starts_with("amortization/"), "{}", f[0].entry);
    }

    #[test]
    fn amortization_floor_is_skipped_across_unlike_hosts() {
        let base = doc(
            "",
            ", \"available_parallelism\": 1, \"batch_amortization\": \
             [{\"backend\": \"blocked\", \"batch\": 8, \"speedup\": 1.05}]",
        );
        let fresh = doc(
            "",
            ", \"available_parallelism\": 8, \"batch_amortization\": \
             [{\"backend\": \"blocked\", \"batch\": 8, \"speedup\": 0.7}]",
        );
        let f = check_bench("t", &base, &fresh, 25.0);
        assert!(f.iter().all(|x| x.kind == FindingKind::Skipped), "{f:?}");
        assert!(f.iter().any(|x| x.entry.starts_with("amortization/")));
    }

    #[test]
    fn missing_amortization_entry_is_coverage_loss() {
        let base = doc(
            "",
            ", \"batch_amortization\": \
             [{\"backend\": \"blocked\", \"batch\": 8, \"speedup\": 1.05}]",
        );
        let fresh = doc("", ", \"batch_amortization\": []");
        let f = check_bench("t", &base, &fresh, 25.0);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::MissingEntry);
        assert!(f[0].kind.is_failure());
    }

    #[test]
    fn entries_match_on_compound_identity() {
        // Two entries sharing "name" but differing in "network" must not
        // cross-match.
        let base = doc(
            r#"{"network": "vgg", "name": "x", "median_us": 100.0},
               {"network": "vdsr", "name": "x", "median_us": 10.0}"#,
            "",
        );
        let fresh = doc(
            r#"{"network": "vgg", "name": "x", "median_us": 100.0},
               {"network": "vdsr", "name": "x", "median_us": 10.0}"#,
            "",
        );
        assert!(check_bench("t", &base, &fresh, 25.0).is_empty());
    }
}
