//! Figure 9: per-layer feature-map sizes (Mbits) of MobileNet-V1,
//! ResNet-18 and ResNet-50 at 224² input, marking the first layer of each
//! residual block (the layers that need an extra on-chip input copy,
//! §III-A).

use bconv_accel::platform::ultra96;
use bconv_bench::{header, hline};
use bconv_models::analysis::{feature_map_series, fusion_depth};
use bconv_models::mobilenet::mobilenet_v1;
use bconv_models::resnet::{resnet18, resnet50};
use bconv_tensor::error::TensorError;

fn run() -> Result<(), TensorError> {
    let budget = ultra96().bram_mbits();
    println!("Figure 9: feature map size per conv layer (16-bit), ZU3EG budget {budget:.1} Mbits");
    for net in [mobilenet_v1(224, false), resnet18(224, false), resnet50(224, false)] {
        header(&net.name.clone());
        hline(52);
        let series = feature_map_series(&net, 16)?;
        for p in &series {
            let mark = if p.residual_first { " *residual-first" } else { "" };
            println!("{:<24} {:>8.2}{mark}", p.name, p.mbits);
        }
        let depth = fusion_depth(&net, 16, budget)?;
        match depth {
            Some(d) => println!(
                "fusion depth for {budget:.1} Mbits budget: fuse first {} layers ({})",
                d + 1,
                series[d].name
            ),
            None => println!("no fusion depth fits {budget:.1} Mbits"),
        }
    }
    Ok(())
}

fn main() -> Result<(), TensorError> {
    run()
}
