//! Tables VIII and IX: the VDSR architecture, and the VDSR accelerator's
//! resource utilisation and off-chip feature-map transfer size — baseline
//! vs block-convolution variant on the Ultra96.

use bconv_accel::platform::{ultra96, EnergyModel};
use bconv_accel::vdsr_accel::{evaluate_baseline, evaluate_blockconv, VdsrConfig};
use bconv_bench::{header, hline};
use bconv_models::vdsr::vdsr;
use bconv_tensor::error::TensorError;

fn run() -> Result<(), TensorError> {
    // Table VIII: architecture.
    header("Table VIII: VDSR architecture (1080x1920 input)");
    let net = vdsr(1080, 1920);
    let info = net.trace()?;
    hline(64);
    for l in info.iter().filter(|l| l.is_conv) {
        println!(
            "{:<10} 3x3x{}x{}   input {}x{}x{}",
            l.name, l.in_shape.c, l.out_shape.c, l.in_shape.h, l.in_shape.w, l.in_shape.c
        );
    }
    println!("eltwise-sum with the network input");

    // Table IX: accelerator comparison.
    let cfg = VdsrConfig::paper();
    let platform = ultra96();
    let base = evaluate_baseline(&cfg, &platform);
    let bconv = evaluate_blockconv(&cfg, &platform);

    header("Table IX: VDSR accelerator on Ultra96 (8-bit act / 4-bit wt, 27x48 tiles)");
    hline(86);
    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10} {:>18}",
        "variant", "BRAM18", "LUT", "FF", "DSP", "transfer Mbits"
    );
    hline(86);
    for (name, e) in [("baseline", &base), ("baseline+BConv", &bconv)] {
        println!(
            "{:<18} {:>7}/{:<4} {:>12} {:>10} {:>6}/{:<3} {:>18.2}",
            name,
            e.bram18,
            platform.bram18_blocks,
            e.lut,
            e.ff,
            e.dsp,
            platform.dsp,
            e.transfer_mbits()
        );
    }
    hline(86);
    println!(
        "transfer reduction: {:.3}%  (paper: 36481.64 -> 31.64 Mbits, >99.9%)",
        100.0 * (1.0 - bconv.transfer_bits as f64 / base.transfer_bits as f64)
    );
    let energy = EnergyModel::default();
    println!(
        "DRAM energy for feature maps: baseline {:.1} mJ -> BConv {:.3} mJ per image",
        base.dram_energy_mj(&energy),
        bconv.dram_energy_mj(&energy)
    );
    println!(
        "DRAM transfer cycles: baseline {} -> BConv {} (compute {} cycles)",
        base.dram_cycles, bconv.dram_cycles, base.compute_cycles
    );
    Ok(())
}

fn main() -> Result<(), TensorError> {
    run()
}
