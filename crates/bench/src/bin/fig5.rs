//! Figure 5: top-1 accuracy of blocked networks vs blocking ratio under
//! fixed (F) and hierarchical (H) blocking, for the VGG / ResNet /
//! MobileNet analogues.
//!
//! The paper's two conclusions under test: accuracy falls as the blocking
//! ratio rises, and fixed blocking beats hierarchical at equal ratios.

use bconv_bench::{classifier_config, header, hline, EVAL_SAMPLES};
use bconv_core::BlockingPattern;
use bconv_tensor::error::TensorError;
use bconv_tensor::init::seeded_rng;
use bconv_tensor::pad::PadMode;
use bconv_train::models::{NetStyle, SmallClassifier};
use bconv_train::trainer::{eval_classifier, train_classifier, TrainConfig};

fn run() -> Result<(), TensorError> {
    header("Figure 5: accuracy vs blocking ratio (F = fixed, H = hierarchical)");
    // Patterns ordered by increasing aggressiveness. F32 blocks only the
    // 32-res layers; F16 also the 16-res ones; H2/H4 block everything.
    #[allow(clippy::type_complexity)]
    let patterns: [(&str, Box<dyn Fn(usize) -> Option<(BlockingPattern, PadMode)>>); 5] = [
        ("none", Box::new(|_| None)),
        ("F32", Box::new(|res| (res >= 32).then_some((BlockingPattern::fixed(32), PadMode::Zero)))),
        ("F16", Box::new(|res| (res >= 16).then_some((BlockingPattern::fixed(16), PadMode::Zero)))),
        ("H2x2", Box::new(|_| Some((BlockingPattern::hierarchical(2), PadMode::Zero)))),
        (
            "H4x4",
            Box::new(|res| (res >= 4).then_some((BlockingPattern::hierarchical(4), PadMode::Zero))),
        ),
    ];

    hline(70);
    println!("{:<14} {:<8} {:>16} {:>12}", "network", "pattern", "blocking ratio", "top-1");
    hline(70);
    for style in [NetStyle::Vgg, NetStyle::ResNet, NetStyle::MobileNet] {
        let cfg = if style == NetStyle::MobileNet {
            TrainConfig { steps: 600, ..classifier_config() }
        } else {
            classifier_config()
        };
        for (name, rule) in &patterns {
            let mut net = SmallClassifier::new(style, 8, 4, &mut seeded_rng(11))?;
            let ratio = net.blocking_ratio(rule.as_ref());
            net.apply_blocking(rule.as_ref());
            let exp = format!("fig5-{style:?}");
            train_classifier(&mut net, &exp, &cfg)?;
            let acc = eval_classifier(&mut net, &exp, EVAL_SAMPLES)?;
            println!(
                "{:<14} {:<8} {:>15.1}% {:>11.1}%",
                style.name(),
                name,
                ratio * 100.0,
                acc * 100.0
            );
        }
        hline(70);
    }
    println!("paper: accuracy decreases with blocking ratio; F consistently beats H");
    Ok(())
}

fn main() -> Result<(), TensorError> {
    run()
}
