//! Table VI: fused-layer configurations A–G for VGG-16 — grouping styles
//! and per-layer blocking sizes `[Tr, Tc]` — with their simulated BRAM and
//! latency.

use bconv_accel::fusion::{table6_configs, vgg16_shapes};
use bconv_accel::platform::zc706;
use bconv_bench::hline;

fn main() {
    let shapes = vgg16_shapes();
    let platform = zc706();
    let configs = table6_configs();
    let layer_names = [
        "conv1-1", "conv1-2", "conv2-1", "conv2-2", "conv3-1", "conv3-2", "conv3-3", "conv4-1",
        "conv4-2", "conv4-3", "conv5-1", "conv5-2", "conv5-3",
    ];

    println!("Table VI: fused-layer configurations of VGG-16");
    print!("{:<10}", "");
    for d in &configs {
        print!("{:>12}", d.name);
    }
    println!();
    print!("{:<10}", "groups");
    for d in &configs {
        let style: Vec<String> = d.group_sizes.iter().map(|g| g.to_string()).collect();
        print!("{:>12}", style.join(","));
    }
    println!();
    hline(10 + 12 * configs.len());
    for (li, name) in layer_names.iter().enumerate() {
        print!("{name:<10}");
        for d in &configs {
            let (tr, tc) = d.tiles[li];
            print!("{:>12}", format!("[{tr},{tc}]"));
        }
        println!();
    }
    hline(10 + 12 * configs.len());
    print!("{:<10}", "bits/PEs");
    for d in &configs {
        print!("{:>12}", format!("{}b/{}PE", d.bits, d.npe));
    }
    println!();
    print!("{:<10}", "BRAM18");
    for d in &configs {
        print!("{:>12}", d.evaluate(&shapes, &platform).bram18);
    }
    println!("   (capacity {})", platform.bram18_blocks);
    print!("{:<10}", "ms/image");
    for d in &configs {
        print!("{:>12.1}", d.evaluate(&shapes, &platform).latency_ms(&platform));
    }
    println!();
    print!("{:<10}", "GOP/s");
    for d in &configs {
        print!("{:>12.1}", d.evaluate(&shapes, &platform).gops(&platform));
    }
    println!();
}
