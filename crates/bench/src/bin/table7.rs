//! Table VII: comparison with published VGG-16 FPGA accelerators. The
//! literature rows are the paper's printed values; the "Ours" rows show
//! both the paper's reported numbers and our simulator's reproduction of
//! design G.

use bconv_accel::fusion::{table6_configs, vgg16_shapes};
use bconv_accel::platform::zc706;
use bconv_accel::report::{table7_paper_ours, table7_published_rows};
use bconv_bench::hline;

fn main() {
    let shapes = vgg16_shapes();
    let platform = zc706();

    println!("Table VII: VGG-16 accelerator comparison");
    hline(108);
    println!(
        "{:<22} {:<18} {:<12} {:>5} {:>11} {:>6} {:>10} {:>10} {:>10}",
        "work", "platform", "precision", "MHz", "BRAMs", "DSPs", "GOP/s", "ms/image", "interm.xfer"
    );
    hline(108);
    for r in table7_published_rows() {
        println!(
            "{:<22} {:<18} {:<12} {:>5} {:>11} {:>6} {:>10.2} {:>10.2} {:>10}",
            r.work,
            r.platform,
            r.precision,
            r.freq_mhz,
            r.brams,
            r.dsps,
            r.gops,
            r.latency_ms,
            if r.intermediate_transfer { "yes" } else { "NO" }
        );
    }
    let paper = table7_paper_ours();
    println!(
        "{:<22} {:<18} {:<12} {:>5} {:>11} {:>6} {:>10.2} {:>10.2} {:>10}",
        paper.work,
        paper.platform,
        paper.precision,
        paper.freq_mhz,
        paper.brams,
        paper.dsps,
        paper.gops,
        paper.latency_ms,
        "NO"
    );
    // Our simulated reproduction: design G (8-bit, 4 PE on ZC706).
    let g = &table6_configs()[6];
    let e = g.evaluate(&shapes, &platform);
    println!(
        "{:<22} {:<18} {:<12} {:>5} {:>11} {:>6} {:>10.2} {:>10.2} {:>10}",
        "Ours (simulated G)",
        platform.name,
        format!("{}b fixed", g.bits),
        platform.freq_mhz as u32,
        format!("{} used", e.bram18),
        platform.dsp,
        e.gops(&platform),
        e.latency_ms(&platform),
        "NO"
    );
    hline(108);
    println!(
        "feature-map off-chip traffic of simulated G: {:.1} Mbits (input + output only)",
        e.feature_traffic_bits as f64 / 1e6
    );
}
