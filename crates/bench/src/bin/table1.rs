//! Table I: top-1 accuracy of the (small-scale) VGG / ResNet / MobileNet
//! analogues — trained baseline, block convolution trained from scratch,
//! and block convolution fine-tuned from the baseline — plus the blocking
//! ratio column computed exactly from the *full-size* architectures.
//!
//! Substitution note (DESIGN.md §2): ImageNet training is replaced by the
//! synthetic blob-offset task; the paper's claim under test is that blocked
//! accuracy stays within ~1% of the baseline under the F-pattern rule.

use bconv_bench::{classifier_config, finetune_config, header, hline, EVAL_SAMPLES};
use bconv_core::BlockingPattern;
use bconv_models::analysis::plan_for;
use bconv_models::mobilenet::mobilenet_v1;
use bconv_models::resnet::{resnet18, resnet50};
use bconv_models::vgg::vgg16;
use bconv_tensor::error::TensorError;
use bconv_tensor::init::seeded_rng;
use bconv_train::models::{fixed_rule, NetStyle, SmallClassifier};
use bconv_train::trainer::{eval_classifier, train_classifier, TrainConfig};

/// Block size for the small nets: F16 plays the role of the paper's F28
/// (half the 32² input, as 28 is half-ish of 224² stage resolutions).
const BLOCK: usize = 16;

fn eval_style(style: NetStyle, seed: u64) -> Result<(f64, f64, f64), TensorError> {
    let cfg = classifier_config();
    let steps = if style == NetStyle::MobileNet { TrainConfig { steps: 600, ..cfg } } else { cfg };
    let exp = format!("table1-{style:?}");

    // Baseline.
    let mut baseline = SmallClassifier::new(style, 8, 4, &mut seeded_rng(seed))?;
    train_classifier(&mut baseline, &exp, &steps)?;
    let base_acc = eval_classifier(&mut baseline, &exp, EVAL_SAMPLES)?;

    // Block convolution, trained from scratch (same init, same data).
    let mut scratch = SmallClassifier::new(style, 8, 4, &mut seeded_rng(seed))?;
    scratch.apply_blocking(&fixed_rule(BLOCK));
    train_classifier(&mut scratch, &exp, &steps)?;
    let scratch_acc = eval_classifier(&mut scratch, &exp, EVAL_SAMPLES)?;

    // Block convolution, fine-tuned from the trained baseline.
    baseline.apply_blocking(&fixed_rule(BLOCK));
    train_classifier(&mut baseline, &exp, &finetune_config())?;
    let ft_acc = eval_classifier(&mut baseline, &exp, EVAL_SAMPLES)?;

    Ok((base_acc, scratch_acc, ft_acc))
}

fn run() -> Result<(), TensorError> {
    header("Table I: top-1 accuracy (synthetic task, small-scale analogues)");
    hline(88);
    println!(
        "{:<22} {:>10} {:>16} {:>16} {:>16}",
        "network", "baseline", "BConv scratch", "BConv fine-tune", "blocking ratio"
    );
    hline(88);

    // Exact blocking ratios from the full-size architectures under F28
    // with the paper's stride-to-pooling rewrite.
    let full_ratio = |net: &bconv_models::Network| -> Result<f64, TensorError> {
        Ok(plan_for(net, BlockingPattern::fixed(28))?.blocking_ratio())
    };
    let ratios = [
        ("VGG-16", full_ratio(&vgg16(224))?, 76.92),
        ("ResNet-18", full_ratio(&resnet18(224, true))?, 76.47),
        ("ResNet-50", full_ratio(&resnet50(224, true))?, 81.63),
        ("MobileNet-V1", full_ratio(&mobilenet_v1(224, true))?, 44.44),
    ];

    for (style, (name, ratio, paper_ratio)) in [
        (NetStyle::Vgg, ratios[0]),
        (NetStyle::ResNet, ratios[1]),
        (NetStyle::ResNet, ratios[2]),
        (NetStyle::MobileNet, ratios[3]),
    ] {
        let seed = name.len() as u64; // distinct fixed seeds per row
        let (base, scratch, ft) = eval_style(style, seed)?;
        println!(
            "{:<22} {:>9.1}% {:>15.1}% {:>15.1}% {:>7.2}% (paper {paper_ratio:.2}%)",
            name,
            base * 100.0,
            scratch * 100.0,
            ft * 100.0,
            ratio * 100.0
        );
    }
    hline(88);
    println!("paper: blocked accuracy within ~1% of baseline; fine-tuning can exceed baseline");
    Ok(())
}

fn main() -> Result<(), TensorError> {
    run()
}
