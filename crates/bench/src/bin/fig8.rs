//! Figure 8: detection AP under coarse (H2) vs fine (H4) backbone blocking,
//! with and without also blocking the detection heads.
//!
//! The paper's claims under test: larger blocks lose less AP (F56 vs F28),
//! and blocking the heads costs extra AP on top of backbone blocking.

use bconv_bench::{detector_config, header, hline, DET_EVAL_SAMPLES};
use bconv_tensor::error::TensorError;
use bconv_tensor::init::seeded_rng;
use bconv_train::models::{hierarchical_rule, SmallDetector};
use bconv_train::trainer::{eval_detector, train_detector};

fn run() -> Result<(), TensorError> {
    header("Figure 8: AP vs blocking granularity and scope");
    hline(70);
    println!("{:<34} {:>8} {:>8} {:>8}", "configuration", "AP", "AP@0.5", "AP@0.75");
    hline(70);
    let cfg = detector_config();
    let runs: [(&str, usize, bool); 5] = [
        ("baseline (no blocking)", 0, false),
        ("backbone H2 (coarse, ~F56)", 2, false),
        ("backbone H4 (fine, ~F28)", 4, false),
        ("backbone+heads H2", 2, true),
        ("backbone+heads H4", 4, true),
    ];
    for (name, g, heads) in runs {
        let mut det = SmallDetector::new(8, &mut seeded_rng(71))?;
        if g > 0 {
            det.apply_backbone_blocking(&hierarchical_rule(g));
            if heads {
                det.apply_head_blocking(&hierarchical_rule(g));
            }
        }
        train_detector(&mut det, "fig8", &cfg)?;
        let ap = eval_detector(&mut det, "fig8", DET_EVAL_SAMPLES)?;
        println!("{:<34} {:>8.3} {:>8.3} {:>8.3}", name, ap.ap, ap.ap50, ap.ap75);
    }
    hline(70);
    println!("paper: coarser blocking loses less mAP; blocking heads costs extra mAP");
    Ok(())
}

fn main() -> Result<(), TensorError> {
    run()
}
