//! Table IV: PSNR of the VDSR analogue on the synthetic super-resolution
//! task — baseline, H2×2 hierarchical, fixed irregular blocking, and
//! blocking depths 2 and 4 — at scale factors ×2/×3/×4.
//!
//! Scaled mapping (DESIGN.md §2): 24×24 patches instead of 41×41, F16
//! irregular (16+8 splits) instead of F28 (28+13), a 6-layer width-12 net
//! instead of the 20-layer width-64 VDSR.

use bconv_bench::{header, hline, vdsr_config, SR_PATCH};
use bconv_core::plan::NetworkPlan;
use bconv_core::BlockingPattern;
use bconv_tensor::error::TensorError;
use bconv_tensor::init::seeded_rng;
use bconv_tensor::pad::PadMode;
use bconv_train::layers::Blocking;
use bconv_train::models::SmallVdsr;
use bconv_train::trainer::{eval_vdsr_psnr, train_vdsr};

const DEPTH: usize = 6;
const WIDTH: usize = 12;

fn build(config: &str) -> Result<SmallVdsr, TensorError> {
    let mut net = SmallVdsr::new(DEPTH, WIDTH, &mut seeded_rng(51))?;
    let h22 = BlockingPattern::hierarchical(2);
    match config {
        "baseline" => {}
        "H2x2" => net.apply_plan(
            NetworkPlan::by_blocking_depth(DEPTH, h22, usize::MAX).per_layer(),
            PadMode::Zero,
        ),
        "fixed-irregular" => {
            // F16 on a 24px patch -> 16+8 irregular splits on every layer.
            let b = Blocking::Pattern(BlockingPattern::fixed(16), PadMode::Zero);
            net.apply_blocking(&[b; DEPTH]);
        }
        "depth2" => {
            net.apply_plan(NetworkPlan::by_blocking_depth(DEPTH, h22, 2).per_layer(), PadMode::Zero)
        }
        "depth4" => {
            net.apply_plan(NetworkPlan::by_blocking_depth(DEPTH, h22, 4).per_layer(), PadMode::Zero)
        }
        other => {
            return Err(TensorError::InvalidParameter {
                context: format!("unknown table4 config {other}"),
            })
        }
    }
    Ok(net)
}

fn run() -> Result<(), TensorError> {
    header("Table IV: PSNR (dB) of VDSR (small analogue) on synthetic SR");
    let configs = ["baseline", "H2x2", "fixed-irregular", "depth2", "depth4"];
    hline(76);
    print!("{:<8}", "scale");
    for c in configs {
        print!("{c:>14}");
    }
    println!();
    hline(76);
    let cfg = vdsr_config();
    for scale in [2usize, 3, 4] {
        print!("x{scale:<7}");
        for config in configs {
            let mut net = build(config)?;
            let exp = format!("table4-x{scale}");
            train_vdsr(&mut net, &exp, scale, SR_PATCH, &cfg)?;
            let psnr = eval_vdsr_psnr(&mut net, &exp, scale, SR_PATCH, 32)?;
            print!("{psnr:>14.2}");
        }
        println!();
    }
    hline(76);
    println!("paper: PSNR loss under blocking <= 0.5 dB; fixed irregular >= H2x2;");
    println!("       deeper fusion points (smaller blocking depth) recover PSNR");
    Ok(())
}

fn main() -> Result<(), TensorError> {
    run()
}
