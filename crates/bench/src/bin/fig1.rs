//! Figure 1: per-layer feature-map volumes of VGG-16 (224²) and VDSR
//! (256²) at 16-bit activations, against the ZC706 and Ultra96 BRAM
//! capacities.

use bconv_accel::platform::{ultra96, zc706};
use bconv_bench::{header, hline};
use bconv_models::analysis::feature_map_series;
use bconv_models::{vdsr::vdsr, vgg::vgg16};
use bconv_tensor::error::TensorError;

fn run() -> Result<(), TensorError> {
    let zc = zc706();
    let u96 = ultra96();
    println!("Figure 1: volume of intermediate feature maps (16-bit activations)");
    println!(
        "On-chip BRAM: {} = {:.2} Mbits, {} = {:.2} Mbits",
        zc.name,
        zc.bram_mbits(),
        u96.name,
        u96.bram_mbits()
    );

    for net in [vgg16(224), vdsr(256, 256)] {
        header(&format!("{} output feature maps (Mbits)", net.name));
        hline(44);
        let series = feature_map_series(&net, 16)?;
        let mut total = 0.0;
        for p in &series {
            let over = if p.mbits > zc.bram_mbits() { " > ZC706" } else { "" };
            println!("{:<12} {:>10.2}{over}", p.name, p.mbits);
            total += p.mbits;
        }
        hline(44);
        println!("{:<12} {:>10.2}", "total", total);
    }
    Ok(())
}

fn main() -> Result<(), TensorError> {
    run()
}
