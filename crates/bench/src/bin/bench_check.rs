//! CI benchmark-regression gate: compare fresh `--quick` bench runs
//! against the committed `BENCH_*.json` baselines and fail on >25%
//! throughput regression or **any** off-chip-bits increase.
//! Skip-and-flag entries (e.g. threaded configs on a 1-core host) are
//! exempt — see [`bconv_bench::check`] for the exact rules. Every
//! exemption is listed in a dedicated summary block at the end of the run,
//! so a skipped parallel config is visible in CI output rather than a
//! silent coverage hole.
//!
//! Usage: `bench_check [--tolerance PCT] [--fresh-suffix SUF] [BENCH...]`
//!
//! With no bench names, checks `kernels quant serve planner`. For each
//! bench `B` the baseline is `BENCH_B.json` (committed) and the fresh run
//! is `BENCH_B<SUF>` (default suffix `.fresh.json`, what the CI loop
//! writes via `--out`). Exits non-zero when any gate rule fails, and with
//! status 2 on usage/IO errors.

use bconv_bench::check::{check_bench, Finding, Json};

const DEFAULT_BENCHES: [&str; 4] = ["kernels", "quant", "serve", "planner"];
const DEFAULT_TOLERANCE_PCT: f64 = 25.0;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e} (run the bench first)"))?;
    Json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned());
    let tolerance: f64 = match opt("--tolerance") {
        Some(v) => v.parse().map_err(|_| format!("--tolerance takes a percentage, got {v:?}"))?,
        None => DEFAULT_TOLERANCE_PCT,
    };
    let suffix = opt("--fresh-suffix").unwrap_or_else(|| ".fresh.json".to_string());
    let mut benches: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--tolerance" || a == "--fresh-suffix" {
            skip_next = true;
            continue;
        }
        benches.push(a.clone());
    }
    if benches.is_empty() {
        benches = DEFAULT_BENCHES.iter().map(|s| s.to_string()).collect();
    }

    let mut failures = 0usize;
    let mut exempted: Vec<Finding> = Vec::new();
    for bench in &benches {
        let baseline = load(&format!("BENCH_{bench}.json"))?;
        let fresh = load(&format!("BENCH_{bench}{suffix}"))?;
        let findings = check_bench(bench, &baseline, &fresh, tolerance);
        let entries = baseline.get("results").and_then(Json::as_array).map_or(0, <[Json]>::len);
        println!(
            "{bench}: {} baseline entries, {} finding(s) (tolerance {tolerance}%)",
            entries,
            findings.len()
        );
        for f in findings {
            println!("  {f}");
            if f.kind.is_failure() {
                failures += 1;
            } else {
                exempted.push(f);
            }
        }
    }
    // Make every skip-and-flag exemption loudly visible: a parallel config
    // the fresh host could not measure is a known coverage hole, not a
    // pass, and CI logs must say exactly which configs went ungated.
    if exempted.is_empty() {
        println!("bench_check: no skip-and-flag exemptions — every baseline config was gated");
    } else {
        println!(
            "bench_check: {} skip-and-flag exemption(s) (NOT gated this run):",
            exempted.len()
        );
        for f in &exempted {
            println!("  exempt {}/{}: {}", f.bench, f.entry, f.detail);
        }
    }
    println!(
        "bench_check: {} failure(s), {} exemption(s) across {} bench(es)",
        failures,
        exempted.len(),
        benches.len()
    );
    Ok(failures == 0)
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("bench_check: {e}");
            std::process::exit(2);
        }
    }
}
