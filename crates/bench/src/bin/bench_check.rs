//! CI benchmark-regression gate: compare fresh `--quick` bench runs
//! against the committed `BENCH_*.json` baselines and fail on >25%
//! throughput regression or **any** off-chip-bits increase.
//! Skip-and-flag entries (e.g. threaded configs on a 1-core host) are
//! exempt — see [`bconv_bench::check`] for the exact rules.
//!
//! Usage: `bench_check [--tolerance PCT] [--fresh-suffix SUF] [BENCH...]`
//!
//! With no bench names, checks `kernels quant serve planner`. For each
//! bench `B` the baseline is `BENCH_B.json` (committed) and the fresh run
//! is `BENCH_B<SUF>` (default suffix `.fresh.json`, what the CI loop
//! writes via `--out`). Exits non-zero when any gate rule fails.

use bconv_bench::check::{check_bench, Json};

const DEFAULT_BENCHES: [&str; 4] = ["kernels", "quant", "serve", "planner"];
const DEFAULT_TOLERANCE_PCT: f64 = 25.0;

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run the bench first)"));
    Json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned());
    let tolerance: f64 = opt("--tolerance")
        .map(|v| v.parse().expect("--tolerance takes a percentage"))
        .unwrap_or(DEFAULT_TOLERANCE_PCT);
    let suffix = opt("--fresh-suffix").unwrap_or_else(|| ".fresh.json".to_string());
    let mut benches: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--tolerance" || a == "--fresh-suffix" {
            skip_next = true;
            continue;
        }
        benches.push(a.clone());
    }
    if benches.is_empty() {
        benches = DEFAULT_BENCHES.iter().map(|s| s.to_string()).collect();
    }

    let mut failures = 0usize;
    let mut skipped = 0usize;
    for bench in &benches {
        let baseline_path = format!("BENCH_{bench}.json");
        let fresh_path = format!("BENCH_{bench}{suffix}");
        let baseline = load(&baseline_path);
        let fresh = load(&fresh_path);
        let findings = check_bench(bench, &baseline, &fresh, tolerance);
        let entries = baseline.get("results").and_then(Json::as_array).map_or(0, <[Json]>::len);
        println!(
            "{bench}: {} baseline entries, {} finding(s) (tolerance {tolerance}%)",
            entries,
            findings.len()
        );
        for f in &findings {
            println!("  {f}");
            if f.kind.is_failure() {
                failures += 1;
            } else {
                skipped += 1;
            }
        }
    }
    println!(
        "bench_check: {} failure(s), {} skip-and-flag exemption(s) across {} bench(es)",
        failures,
        skipped,
        benches.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
