//! Kernel-layer benchmark: direct vs im2col+GEMM conv kernels, serial vs
//! thread-parallel block dispatch, on the vgg16_small fused pipeline.
//!
//! Writes `BENCH_kernels.json` (machine-readable, one entry per
//! configuration, speedups relative to the direct serial baseline — the
//! seed repo's execution mode) so successive PRs accumulate a perf
//! trajectory. `--quick` trims repetitions for CI.
//!
//! Usage: `bench_kernels [--quick] [--out PATH]`

use bconv_bench::session_times;
use bconv_core::BlockingPattern;
use bconv_graph::{KernelPolicy, Segment, Session};
use bconv_models::small::vgg16_small;
use bconv_tensor::error::TensorError;
use bconv_tensor::init::{seeded_rng, uniform_tensor};

struct Config {
    name: &'static str,
    kernel: KernelPolicy,
    threads: usize,
}

struct Measurement {
    name: String,
    kernel: &'static str,
    threads_requested: usize,
    threads_effective: usize,
    median_us: f64,
    min_us: f64,
    speedup: f64,
    output_matches_baseline: bool,
}

fn build(kernel: KernelPolicy, threads: usize) -> Result<Session, TensorError> {
    Session::builder()
        .network(vgg16_small(32))
        .pattern(BlockingPattern::hierarchical(2))
        .kernel(kernel)
        .threads(threads)
        .seed(2018)
        .build()
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let reps = if quick { 9 } else { 30 };
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let many = avail.max(2);

    // On a 1-core host the *_tN configs cannot run in parallel: reporting
    // their (slower, contention-only) timings reads as a threading
    // regression, so they are skipped and flagged in the JSON instead.
    let threaded_configs_skipped = avail == 1;
    let mut configs = vec![
        Config { name: "direct_t1", kernel: KernelPolicy::Direct, threads: 1 },
        Config { name: "gemm_t1", kernel: KernelPolicy::Im2colGemm, threads: 1 },
    ];
    if threaded_configs_skipped {
        println!(
            "available_parallelism is 1: skipping direct_tN/gemm_tN (no parallel speedup is \
             measurable on this host)"
        );
    } else {
        configs.push(Config { name: "direct_tN", kernel: KernelPolicy::Direct, threads: many });
        configs.push(Config { name: "gemm_tN", kernel: KernelPolicy::Im2colGemm, threads: many });
    }

    let input = uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut seeded_rng(7));
    let baseline_session = build(configs[0].kernel, configs[0].threads)?;
    let baseline_out = baseline_session.run(&input)?.output;
    let baseline_times = session_times(&baseline_session, &input, reps);

    if threaded_configs_skipped {
        println!("vgg16_small fused pipeline, {reps} reps, serial configs only");
    } else {
        println!("vgg16_small fused pipeline, {reps} reps, {many} worker threads for tN configs");
    }
    let mut results = Vec::new();
    for cfg in &configs {
        let session = build(cfg.kernel, cfg.threads)?;
        let (us, min_us) = if cfg.name == "direct_t1" {
            baseline_times
        } else {
            session_times(&session, &input, reps)
        };
        let out = session.run(&input)?.output;
        let matches = out.data() == baseline_out.data();
        let speedup = baseline_times.0 / us;
        // Requested = what the config asks the session for; effective =
        // how many workers can actually run concurrently: the executor
        // clamps to the fusion group's block count, the host to its cores.
        let blocks = session
            .plan()
            .segments()
            .iter()
            .filter_map(|s| match s {
                Segment::Fused { chain, .. } => Some(chain.in_grid().num_blocks()),
                Segment::Spliced { pipeline, .. } => {
                    pipeline.groups().iter().map(|g| g.in_grid().num_blocks()).max()
                }
                Segment::Single(_) => None,
            })
            .max()
            .unwrap_or(1);
        let effective = cfg.threads.min(avail).min(blocks);
        println!(
            "{:<10} kernel={:<12} threads={:<2} (effective {:<2}) median {:>9.1} us  \
             speedup {:>5.2}x  bitwise-match {}",
            cfg.name,
            cfg.kernel.name(),
            cfg.threads,
            effective,
            us,
            speedup,
            matches
        );
        results.push(Measurement {
            name: cfg.name.to_string(),
            kernel: cfg.kernel.name(),
            threads_requested: cfg.threads,
            threads_effective: effective,
            median_us: us,
            min_us,
            speedup,
            output_matches_baseline: matches,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"kernels\",\n");
    json.push_str("  \"network\": \"vgg16_small\",\n");
    json.push_str("  \"pattern\": \"H2x2\",\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str(&format!("  \"threaded_configs_skipped\": {threaded_configs_skipped},\n"));
    json.push_str("  \"baseline\": \"direct_t1\",\n");
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"kernel\": \"{}\", \"threads_requested\": {}, \
             \"threads_effective\": {}, \"median_us\": {:.1}, \"min_us\": {:.1}, \
             \"speedup_vs_direct_t1\": {:.3}, \"output_matches_baseline\": {}}}{}\n",
            m.name,
            m.kernel,
            m.threads_requested,
            m.threads_effective,
            m.median_us,
            m.min_us,
            m.speedup,
            m.output_matches_baseline,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json)?;
    println!("wrote {out_path}");

    assert!(
        results.iter().all(|m| m.output_matches_baseline),
        "kernel/thread configurations must agree bitwise"
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run()
}
