//! Figure 12: design-space exploration of VGG-16 fusion configurations —
//! inference latency vs BRAM consumption for (a) 16-bit / 2 PEs and
//! (b) 8-bit / 4 PEs, with the ZC706 capacity line.

use bconv_accel::dse::{explore_vgg16, feasible, pareto_front};
use bconv_accel::fusion::{table6_configs, vgg16_shapes};
use bconv_accel::platform::zc706;
use bconv_bench::header;

fn main() {
    let shapes = vgg16_shapes();
    let platform = zc706();
    println!("Figure 12: DSE — latency vs BRAM (ZC706 line at {} BRAM18)", platform.bram18_blocks);

    for (panel, bits, npe) in [("(a)", 16usize, 2usize), ("(b)", 8, 4)] {
        header(&format!("panel {panel}: {bits}-bit, {npe} PEs"));
        let points = explore_vgg16(&shapes, &platform, bits, npe);
        let feas = feasible(&points, &platform);
        println!("{} design points, {} feasible (left of the BRAM line)", points.len(), feas.len());
        println!("Pareto front (BRAM18, latency ms, GOP/s):");
        let mut front = pareto_front(&points);
        front.sort_by_key(|p| p.eval.bram18);
        for p in front {
            let mark = if p.eval.bram18 <= platform.bram18_blocks { "" } else { "  [infeasible]" };
            println!(
                "  {:>5} BRAM  {:>7.1} ms  {:>7.1} GOP/s{mark}",
                p.eval.bram18,
                p.eval.latency_ms(&platform),
                p.eval.gops(&platform)
            );
        }
        // Named Table VI points on this panel.
        for d in table6_configs().iter().filter(|d| d.bits == bits && d.npe == npe) {
            let e = d.evaluate(&shapes, &platform);
            println!(
                "  point {}: {:>5} BRAM  {:>7.1} ms  {:>7.1} GOP/s",
                d.name,
                e.bram18,
                e.latency_ms(&platform),
                e.gops(&platform)
            );
        }
    }
}
