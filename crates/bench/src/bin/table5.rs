//! Tables III and V: the detection benchmark configuration and the AP of
//! the detector with and without a blocked backbone.
//!
//! Substitution (DESIGN.md §2): COCO SSD/FPN become a small SSD-style
//! detector on the synthetic single-object task; the claim under test is a
//! small AP drop when the backbone is blocked.

use bconv_bench::{detector_config, header, hline, DET_EVAL_SAMPLES};
use bconv_models::{fpn::fpn_resnet50, ssd::ssd300_vgg16};
use bconv_tensor::error::TensorError;
use bconv_tensor::init::seeded_rng;
use bconv_train::models::{hierarchical_rule, SmallDetector};
use bconv_train::trainer::{eval_detector, train_detector};

fn run() -> Result<(), TensorError> {
    // Table III: benchmark configuration, from the full-size descriptors.
    header("Table III: detection benchmark configuration");
    for (net, input) in [(ssd300_vgg16(), "300x300"), (fpn_resnet50(800, 1333), "1333x800")] {
        let info = net.trace()?;
        let convs = info.iter().filter(|l| l.is_conv).count();
        let gmacs = info.iter().map(|l| l.macs).sum::<u64>() as f64 / 1e9;
        println!("{:<16} input {input:<10} {convs} convs, {gmacs:.1} GMACs", net.name);
    }

    // Table V: AP with and without backbone blocking.
    header("Table V: detection AP (synthetic single-object task)");
    hline(64);
    println!("{:<22} {:>8} {:>8} {:>8}", "model", "AP", "AP@0.5", "AP@0.75");
    hline(64);
    let cfg = detector_config();
    for (name, blocked) in [("SSD-small", false), ("SSD-small+BConv", true)] {
        let mut det = SmallDetector::new(8, &mut seeded_rng(61))?;
        if blocked {
            det.apply_backbone_blocking(&hierarchical_rule(2));
        }
        train_detector(&mut det, "table5", &cfg)?;
        let ap = eval_detector(&mut det, "table5", DET_EVAL_SAMPLES)?;
        println!("{:<22} {:>8.3} {:>8.3} {:>8.3}", name, ap.ap, ap.ap50, ap.ap75);
    }
    hline(64);
    println!("paper: mAP drop of 1.0 (FPN) / 1.8 (SSD) points when the backbone is blocked");
    Ok(())
}

fn main() -> Result<(), TensorError> {
    run()
}
