//! Planner cost-model benchmark: `ElementBudget` vs `AccelCost` group
//! cuts and `FusedPipeline` splices on vgg16_small and vdsr_small, under
//! an on-chip capacity small enough to force cuts (the interesting
//! regime — with unbounded buffers both models fuse maximally and agree).
//!
//! Writes `BENCH_planner.json`: per (network × cost model) the planner's
//! decisions (fusion groups, cost cuts, splices — from `PlanReport`),
//! the measured off-chip traffic, and the median run time. Asserts that
//! the accel model's plan moves strictly fewer off-chip bits and stays
//! bitwise identical — the cost model is a schedule policy, not a
//! numerics change.
//!
//! Usage: `bench_planner [--quick] [--out PATH] [--tune-out PATH]`

use bconv_accel::platform::zc706;
use bconv_bench::session_times;
use bconv_core::BlockingPattern;
use bconv_graph::{tune, AccelCost, Session, TuneOptions};
use bconv_models::small::vgg16_small;
use bconv_models::Network;
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::Tensor;

struct Workload {
    network: &'static str,
    net: Network,
    input: Tensor,
    /// Element budget that forces at least one mid-network cut.
    budget_elems: usize,
}

struct Measurement {
    network: &'static str,
    cost_model: &'static str,
    fusion_groups: usize,
    segments: usize,
    cost_cuts: usize,
    splices: usize,
    offchip_elems: usize,
    offchip_bits: u64,
    median_us: f64,
    min_us: f64,
    output_matches_baseline: bool,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            network: "vgg16_small",
            net: vgg16_small(32),
            input: uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut seeded_rng(7)),
            // Cuts after conv1-1: its successor's ping-pong pair
            // (16x16x4 + 16x16x4 = 2048 elements) exceeds the budget.
            budget_elems: 1500,
        },
        Workload {
            network: "vdsr_small",
            net: bconv_models::vdsr::vdsr_with_depth(24, 24, 6, 8),
            input: uniform_tensor([1, 1, 24, 24], -1.0, 1.0, &mut seeded_rng(8)),
            // Cuts after conv1 (the budget of the planner's depth test).
            budget_elems: 12 * 12 * 8 + 12 * 12 * 2,
        },
    ]
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_planner.json".to_string());
    let tune_out =
        args.iter().position(|a| a == "--tune-out").and_then(|i| args.get(i + 1).cloned());
    let reps = if quick { 9 } else { 30 };
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut results: Vec<Measurement> = Vec::new();
    for w in workloads() {
        let build = |accel: bool| {
            let b = Session::builder()
                .network(w.net.clone())
                .pattern(BlockingPattern::hierarchical(2))
                .seed(2018)
                .threads(1);
            if accel {
                // The AccelCost twin of the element budget: same
                // intermediate capacity in bits, a generous extra buffer
                // so compatible boundaries splice.
                b.cost_model(AccelCost::with_buffers(
                    zc706(),
                    w.budget_elems as u64 * 32 / 2,
                    1 << 24,
                ))
            } else {
                b.on_chip_budget(w.budget_elems)
            }
            .build()
        };
        let element = build(false)?;
        let accel = build(true)?;
        let baseline_out = element.run(&w.input)?.output;

        for (model, session) in [("element-budget", &element), ("accel-cost", &accel)] {
            let report = session.run(&w.input)?;
            let (us, min_us) = session_times(session, &w.input, reps);
            let pr = session.plan().report();
            let m = Measurement {
                network: w.network,
                cost_model: model,
                fusion_groups: session.plan().fusion_groups(),
                segments: session.plan().segments().len(),
                cost_cuts: pr.cost_cuts.len(),
                splices: pr.splices.len(),
                offchip_elems: report.stats.offchip_elems,
                offchip_bits: report.stats.offchip_bits(),
                median_us: us,
                min_us,
                output_matches_baseline: report.output.data() == baseline_out.data(),
            };
            println!(
                "{:<12} {:<15} groups={:<2} cuts={:<2} splices={:<2} offchip_bits={:>8} \
                 median {:>8.1} us  bitwise-match {}",
                m.network,
                m.cost_model,
                m.fusion_groups,
                m.cost_cuts,
                m.splices,
                m.offchip_bits,
                m.median_us,
                m.output_matches_baseline
            );
            results.push(m);
        }

        // The planner's contract on every workload: the accel model takes
        // at least one splice the element budget cannot, strictly lowers
        // off-chip traffic, and never changes the numbers.
        let e = &results[results.len() - 2];
        let a = &results[results.len() - 1];
        assert!(e.splices == 0 && e.cost_cuts > 0, "{}: budget must cut, never splice", w.network);
        assert!(a.splices > 0, "{}: accel model took no splice", w.network);
        assert!(
            a.offchip_bits < e.offchip_bits,
            "{}: splice did not lower off-chip bits ({} vs {})",
            w.network,
            a.offchip_bits,
            e.offchip_bits
        );
        assert!(a.output_matches_baseline, "{}: cost model changed numerics", w.network);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"planner\",\n");
    json.push_str("  \"pattern\": \"H2x2\",\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str("  \"baseline\": \"element-budget of the same network\",\n");
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"network\": \"{}\", \"cost_model\": \"{}\", \"fusion_groups\": {}, \
             \"segments\": {}, \"cost_cuts\": {}, \"splices\": {}, \"offchip_elems\": {}, \
             \"offchip_bits\": {}, \"median_us\": {:.1}, \"min_us\": {:.1}, \
             \"output_matches_baseline\": {}}}{}\n",
            m.network,
            m.cost_model,
            m.fusion_groups,
            m.segments,
            m.cost_cuts,
            m.splices,
            m.offchip_elems,
            m.offchip_bits,
            m.median_us,
            m.min_us,
            m.output_matches_baseline,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json)?;
    println!("wrote {out_path}");

    // `--tune-out PATH`: run the per-host DSE on vgg16_small and dump the
    // full TuneReport (every point, Pareto front, winner) — CI uploads it
    // as an artifact next to the analyzer report.
    if let Some(path) = tune_out {
        let report = tune(&vgg16_small(32), &TuneOptions::default())?;
        std::fs::write(&path, report.to_json())?;
        println!(
            "wrote {path}: {} points, {} on the Pareto front, winner #{}",
            report.points.len(),
            report.pareto.len(),
            report.winner_index
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run()
}
