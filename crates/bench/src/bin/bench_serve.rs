//! Serving benchmark: multi-stream throughput of the [`ServeEngine`]
//! worker pool and the batch-coalescing amortization of `run_batch`, on
//! vgg16_small across the Reference / Blocked / Quantized backends.
//!
//! Writes `BENCH_serve.json` with one entry per (backend, worker count):
//! closed-loop throughput with one client stream per worker (requests/s,
//! speedup vs the same backend on 1 worker), plus one batch-amortization
//! entry per backend (sequential single runs vs one coalesced
//! `run_batch` on a single worker). Sessions are built with
//! `.threads(1)` so the scaling axis is the engine's worker pool, not
//! intra-request block dispatch.
//!
//! On a 1-core host the multi-worker configs cannot run in parallel:
//! reporting their (contention-only) timings reads as a serving
//! regression, so they are skipped and flagged in the JSON — the same
//! convention as `bench_kernels`' `*_tN` configs.
//!
//! Every benchmarked request's output is checked bitwise against a
//! serial `Session::run` oracle: the scheduling claims of the serving
//! layer are only worth measuring while determinism holds.
//!
//! Usage: `bench_serve [--quick] [--out PATH]`

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use bconv_graph::{Backend, ExecScratch, ServeConfig, ServeEngine, Session};
use bconv_models::small::vgg16_small;
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::{Tensor, TensorError};

const BACKENDS: [(&str, Backend); 3] = [
    ("reference", Backend::Reference),
    ("blocked", Backend::Blocked),
    ("quantized_w8a8", Backend::Quantized { weight_bits: 8, act_bits: 8 }),
];

struct Measurement {
    backend: &'static str,
    workers_requested: usize,
    workers_effective: usize,
    streams: usize,
    requests: usize,
    wall_ms: f64,
    throughput_rps: f64,
    speedup_vs_1_worker: f64,
    outputs_match_oracle: bool,
}

struct Amortization {
    backend: &'static str,
    batch: usize,
    sequential_ms: f64,
    batched_ms: f64,
    speedup: f64,
}

fn build(backend: Backend) -> Result<Session, TensorError> {
    Session::builder().network(vgg16_small(32)).backend(backend).seed(2018).threads(1).build()
}

fn stream_input(stream: usize) -> Tensor {
    uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut seeded_rng(0x5E41 + stream as u64))
}

/// Closed loop: one client thread per stream, each submitting and
/// awaiting `per_stream` requests back-to-back; returns wall time and
/// whether every output matched its oracle bitwise.
fn closed_loop(
    engine: &ServeEngine,
    oracle: &[Tensor],
    per_stream: usize,
) -> Result<(f64, bool), TensorError> {
    let streams = oracle.len();
    let inputs: Vec<Tensor> = (0..streams).map(stream_input).collect();
    // Warm up every worker's scratch (and fault in weights) off the clock.
    engine.run_batch(&inputs)?;
    let all_match = AtomicBool::new(true);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for (s, want) in oracle.iter().enumerate() {
            let engine_ref = &engine;
            let inputs_ref = &inputs;
            let all_match = &all_match;
            scope.spawn(move || {
                for _ in 0..per_stream {
                    let ticket = engine_ref.submit(inputs_ref[s].clone()).expect("submit");
                    let report = engine_ref.wait(ticket).expect("wait");
                    if report.output.data() != want.data() {
                        all_match.store(false, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    Ok((t.elapsed().as_secs_f64() * 1e3, all_match.load(Ordering::Relaxed)))
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    // Quick mode keeps enough requests per stream that fixed per-trial
    // overhead (client-thread spawn, worker wakeup) stays well under the
    // regression gate's tolerance relative to the full-mode baseline.
    let per_stream = if quick { 16 } else { 40 };
    // Each closed-loop config is measured several times and the best wall
    // time kept: external host load only ever slows a trial down, so
    // best-of-trials is the stable capability number the CI regression
    // gate compares.
    let trials = if quick { 2 } else { 3 };
    let amort_batch = 8usize;
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());

    // 1-core hosts cannot show multi-stream speedup; skip and flag, as
    // bench_kernels does for its threaded configs.
    let multi_stream_configs_skipped = avail == 1;
    let worker_counts: Vec<usize> =
        if multi_stream_configs_skipped { vec![1] } else { vec![1, 2, 4, 8] };
    if multi_stream_configs_skipped {
        println!(
            "available_parallelism is 1: skipping multi-worker configs (no serving speedup is \
             measurable on this host)"
        );
    }

    let mut results: Vec<Measurement> = Vec::new();
    let mut amortizations: Vec<Amortization> = Vec::new();
    for (name, backend) in BACKENDS {
        // One serial oracle per backend; its outputs gate every config.
        let oracle_session = build(backend)?;
        let max_streams = worker_counts.iter().copied().max().unwrap_or(1);
        let mut oracle: Vec<Tensor> = Vec::with_capacity(max_streams);
        for s in 0..max_streams {
            oracle.push(oracle_session.run(&stream_input(s))?.output);
        }

        println!("\n{name}: {per_stream} requests/stream, streams = workers");
        let mut base_rps = 0.0f64;
        for &workers in &worker_counts {
            let engine = build(backend)?.into_engine(ServeConfig {
                workers,
                queue_depth: 64,
                max_batch: 4,
            })?;
            let (mut wall_ms, mut ok) = (f64::INFINITY, true);
            for _ in 0..trials {
                let (ms, trial_ok) = closed_loop(&engine, &oracle[..workers], per_stream)?;
                wall_ms = wall_ms.min(ms);
                ok &= trial_ok;
            }
            engine.shutdown();
            let requests = workers * per_stream;
            let rps = requests as f64 / (wall_ms / 1e3);
            if workers == 1 {
                base_rps = rps;
            }
            let speedup = rps / base_rps;
            println!(
                "workers={workers:<2} streams={workers:<2} {requests:>4} reqs in {wall_ms:>8.1} \
                 ms = {rps:>8.0} req/s  speedup {speedup:>5.2}x  bitwise-match {ok}"
            );
            results.push(Measurement {
                backend: name,
                workers_requested: workers,
                workers_effective: workers.min(avail),
                streams: workers,
                requests,
                wall_ms,
                throughput_rps: rps,
                speedup_vs_1_worker: speedup,
                outputs_match_oracle: ok,
            });
        }

        // Batch amortization on one worker: the same requests issued one
        // by one vs pre-coalesced through run_batch (max_batch = the full
        // batch), so block dispatch and scratch traversal are paid once.
        // The sequential baseline reuses one warm ExecScratch, exactly
        // like the engine's worker, so the delta isolates coalescing
        // rather than scratch allocation reuse.
        let inputs: Vec<Tensor> = (0..amort_batch).map(|i| stream_input(i % 4)).collect();
        let mut seq_scratch = ExecScratch::new();
        oracle_session.run_with(&inputs[0], &mut seq_scratch)?;
        let t = Instant::now();
        for input in &inputs {
            std::hint::black_box(oracle_session.run_with(input, &mut seq_scratch)?);
        }
        let sequential_ms = t.elapsed().as_secs_f64() * 1e3;
        let engine = build(backend)?.into_engine(ServeConfig {
            workers: 1,
            queue_depth: 64,
            max_batch: amort_batch,
        })?;
        engine.run_batch(&inputs[..2])?; // grow scratch off the clock
        let t = Instant::now();
        std::hint::black_box(engine.run_batch(&inputs)?);
        let batched_ms = t.elapsed().as_secs_f64() * 1e3;
        engine.shutdown();
        let speedup = sequential_ms / batched_ms;
        println!(
            "run_batch({amort_batch}) on 1 worker: sequential {sequential_ms:.1} ms vs batched \
             {batched_ms:.1} ms = {speedup:.2}x"
        );
        amortizations.push(Amortization {
            backend: name,
            batch: amort_batch,
            sequential_ms,
            batched_ms,
            speedup,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve\",\n");
    json.push_str("  \"network\": \"vgg16_small\",\n");
    json.push_str("  \"session_threads\": 1,\n");
    json.push_str(&format!("  \"requests_per_stream\": {per_stream},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str(&format!(
        "  \"multi_stream_configs_skipped\": {multi_stream_configs_skipped},\n"
    ));
    json.push_str("  \"baseline\": \"workers=1 of the same backend\",\n");
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"workers_requested\": {}, \"workers_effective\": {}, \
             \"streams\": {}, \"requests\": {}, \"wall_ms\": {:.2}, \"throughput_rps\": {:.1}, \
             \"speedup_vs_1_worker\": {:.3}, \"outputs_match_oracle\": {}}}{}\n",
            m.backend,
            m.workers_requested,
            m.workers_effective,
            m.streams,
            m.requests,
            m.wall_ms,
            m.throughput_rps,
            m.speedup_vs_1_worker,
            m.outputs_match_oracle,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"batch_amortization\": [\n");
    for (i, a) in amortizations.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"batch\": {}, \"sequential_ms\": {:.2}, \
             \"batched_ms\": {:.2}, \"speedup\": {:.3}}}{}\n",
            a.backend,
            a.batch,
            a.sequential_ms,
            a.batched_ms,
            a.speedup,
            if i + 1 == amortizations.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json)?;
    println!("\nwrote {out_path}");

    // Determinism gates the whole benchmark: serving timings are only
    // meaningful while every request matches its serial oracle bitwise.
    assert!(
        results.iter().all(|m| m.outputs_match_oracle),
        "served outputs must match the serial oracle bitwise"
    );
    // The acceptance signal: on a genuinely multi-core host, blocked
    // multi-stream throughput must scale with the worker pool. The floor
    // is enforced only in full mode — quick mode's tiny sample (CI on
    // shared runners) records the curve in the JSON and warns instead,
    // so one scheduling hiccup cannot fail a build with no code defect.
    // 1-core hosts skipped the configs above.
    if !multi_stream_configs_skipped {
        let blocked_best = results
            .iter()
            .filter(|m| m.backend == "blocked" && m.workers_requested > 1)
            .map(|m| m.speedup_vs_1_worker)
            .fold(0.0f64, f64::max);
        let floor = if avail >= 4 { 1.1 } else { 0.9 };
        if blocked_best <= floor {
            let msg = format!(
                "blocked multi-stream throughput did not scale: best speedup {blocked_best:.2}x \
                 on {avail} cores (floor {floor})"
            );
            assert!(quick, "{msg}");
            println!("warning ({} requests/stream is a small sample): {msg}", per_stream);
        }
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("bench_serve: {e}");
        std::process::exit(1);
    }
}
