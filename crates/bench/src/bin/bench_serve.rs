//! Serving benchmark: multi-stream throughput of the [`ServeEngine`]
//! worker pool and the batch-coalescing amortization of `run_batch`, on
//! vgg16_small across the Reference / Blocked / Quantized backends.
//!
//! Writes `BENCH_serve.json` with one entry per (backend, worker count):
//! closed-loop throughput with one client stream per worker (requests/s,
//! speedup vs the same backend on 1 worker), plus one batch-amortization
//! entry per backend — a 1-worker engine serving the same requests
//! per-request (`submit`/`wait`, batching off) vs pre-coalesced
//! (`run_batch`), best of several trials each, with a raw
//! `Session::run_with` loop recorded alongside as `solo_run_ms`. The
//! amortization rows run on the tiny dedicated `serve_amort` network so
//! the serving-tier costs under test are a measurable fraction of
//! request time; `bench_check` holds their `speedup` to an absolute
//! floor of 1.0 on like hosts. A `serve_metrics` row per backend
//! (completed/shed counts, dispatch histogram totals, p50/p99 latency)
//! comes from the engine's own counters.
//! Sessions are built with `.threads(1)` so the scaling axis is the
//! engine's worker pool, not intra-request block dispatch.
//!
//! On a 1-core host the multi-worker configs cannot run in parallel:
//! reporting their (contention-only) timings reads as a serving
//! regression, so they are skipped and flagged in the JSON — the same
//! convention as `bench_kernels`' `*_tN` configs.
//!
//! Every benchmarked request's output is checked bitwise against a
//! serial `Session::run` oracle: the scheduling claims of the serving
//! layer are only worth measuring while determinism holds.
//!
//! Usage: `bench_serve [--quick] [--out PATH]`

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use bconv_graph::{Backend, ExecScratch, ServeConfig, ServeEngine, Session};
use bconv_models::builder::{conv, NetBuilder};
use bconv_models::small::vgg16_small;
use bconv_models::{ActShape, Network};
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::{Tensor, TensorError};

const BACKENDS: [(&str, Backend); 3] = [
    ("reference", Backend::Reference),
    ("blocked", Backend::Blocked),
    ("quantized_w8a8", Backend::Quantized { weight_bits: 8, act_bits: 8 }),
];

struct Measurement {
    backend: &'static str,
    workers_requested: usize,
    workers_effective: usize,
    streams: usize,
    requests: usize,
    wall_ms: f64,
    throughput_rps: f64,
    speedup_vs_1_worker: f64,
    outputs_match_oracle: bool,
    /// The plan this configuration actually measured: which cost model
    /// cut its fusion groups, how many splices it took, and where it came
    /// from (fresh / cache-loaded / tune-selected).
    cost_model: String,
    splices: usize,
    plan_provenance: String,
}

/// Plan identity of a built session, for the result rows.
fn plan_fields(session: &Session) -> (String, usize, String) {
    let report = session.plan().report();
    (report.cost_model.clone(), report.splices.len(), report.provenance.to_string())
}

struct Amortization {
    backend: &'static str,
    batch: usize,
    /// Per-request submit/wait through the same 1-worker engine —
    /// serving with batching off, the baseline `speedup` compares
    /// against.
    sequential_ms: f64,
    /// The same requests pre-coalesced through `run_batch`.
    batched_ms: f64,
    /// Informational: a raw `Session::run_with` loop with a warm scratch
    /// (no serving tier at all), for the queue-overhead picture.
    solo_run_ms: f64,
    speedup: f64,
}

/// Engine counters recorded after each backend's amortization runs.
struct MetricsRow {
    backend: &'static str,
    submitted: u64,
    completed: u64,
    shed: u64,
    batches: u64,
    batched_samples: u64,
    p50_latency_us: u64,
    p99_latency_us: u64,
}

fn build(backend: Backend) -> Result<Session, TensorError> {
    Session::builder().network(vgg16_small(32)).backend(backend).seed(2018).threads(1).build()
}

fn stream_input(stream: usize) -> Tensor {
    uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut seeded_rng(0x5E41 + stream as u64))
}

/// The batch-amortization workload: a deliberately small network, so the
/// serving-tier costs that batching targets — queue round-trips, dispatch
/// bookkeeping, coalescing copies — are a measurable fraction of request
/// time. Under vgg16_small they are all sub-percent of per-request
/// compute, and the sequential/batched ratio measures host jitter instead
/// of the serving tier. Closed-loop throughput keeps vgg16_small.
fn amort_net() -> Network {
    let mut b = NetBuilder::new("serve_amort", ActShape { c: 2, h: 8, w: 8 });
    b.push("conv1", conv(3, 1, 1, 2, 4));
    b.push("conv2", conv(3, 1, 1, 4, 4));
    b.build()
}

fn build_amort(backend: Backend) -> Result<Session, TensorError> {
    Session::builder().network(amort_net()).backend(backend).seed(2018).threads(1).build()
}

fn amort_input(i: usize) -> Tensor {
    uniform_tensor([1, 2, 8, 8], -1.0, 1.0, &mut seeded_rng(0xA3027 + (i % 4) as u64))
}

/// Closed loop: one client thread per stream, each submitting and
/// awaiting `per_stream` requests back-to-back; returns wall time and
/// whether every output matched its oracle bitwise.
fn closed_loop(
    engine: &ServeEngine,
    oracle: &[Tensor],
    per_stream: usize,
) -> Result<(f64, bool), TensorError> {
    let streams = oracle.len();
    let inputs: Vec<Tensor> = (0..streams).map(stream_input).collect();
    // Warm up every worker's scratch (and fault in weights) off the clock.
    engine.run_batch(inputs.clone())?;
    let all_match = AtomicBool::new(true);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for (s, want) in oracle.iter().enumerate() {
            let engine_ref = &engine;
            let inputs_ref = &inputs;
            let all_match = &all_match;
            scope.spawn(move || {
                for _ in 0..per_stream {
                    let ticket = engine_ref.submit(inputs_ref[s].clone()).expect("submit");
                    let report = engine_ref.wait(ticket).expect("wait");
                    if report.output.data() != want.data() {
                        all_match.store(false, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    Ok((t.elapsed().as_secs_f64() * 1e3, all_match.load(Ordering::Relaxed)))
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    // Quick mode keeps enough requests per stream that fixed per-trial
    // overhead (client-thread spawn, worker wakeup) stays well under the
    // regression gate's tolerance relative to the full-mode baseline.
    let per_stream = if quick { 16 } else { 40 };
    // Each closed-loop config is measured several times and the best wall
    // time kept: external host load only ever slows a trial down, so
    // best-of-trials is the stable capability number the CI regression
    // gate compares.
    let trials = if quick { 2 } else { 3 };
    let amort_batch = 8usize;
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());

    // 1-core hosts cannot show multi-stream speedup; skip and flag, as
    // bench_kernels does for its threaded configs.
    let multi_stream_configs_skipped = avail == 1;
    let worker_counts: Vec<usize> =
        if multi_stream_configs_skipped { vec![1] } else { vec![1, 2, 4, 8] };
    if multi_stream_configs_skipped {
        println!(
            "available_parallelism is 1: skipping multi-worker configs (no serving speedup is \
             measurable on this host)"
        );
    }

    let mut results: Vec<Measurement> = Vec::new();
    let mut amortizations: Vec<Amortization> = Vec::new();
    let mut metrics_rows: Vec<MetricsRow> = Vec::new();
    for (name, backend) in BACKENDS {
        // One serial oracle per backend; its outputs gate every config.
        let oracle_session = build(backend)?;
        let max_streams = worker_counts.iter().copied().max().unwrap_or(1);
        let mut oracle: Vec<Tensor> = Vec::with_capacity(max_streams);
        for s in 0..max_streams {
            oracle.push(oracle_session.run(&stream_input(s))?.output);
        }

        println!("\n{name}: {per_stream} requests/stream, streams = workers");
        let mut base_rps = 0.0f64;
        for &workers in &worker_counts {
            let session = build(backend)?;
            let (cost_model, splices, plan_provenance) = plan_fields(&session);
            let engine = session.into_engine(ServeConfig {
                workers,
                queue_depth: 64,
                max_batch: 4,
                ..ServeConfig::default()
            })?;
            let (mut wall_ms, mut ok) = (f64::INFINITY, true);
            for _ in 0..trials {
                let (ms, trial_ok) = closed_loop(&engine, &oracle[..workers], per_stream)?;
                wall_ms = wall_ms.min(ms);
                ok &= trial_ok;
            }
            engine.shutdown();
            let requests = workers * per_stream;
            let rps = requests as f64 / (wall_ms / 1e3);
            if workers == 1 {
                base_rps = rps;
            }
            let speedup = rps / base_rps;
            println!(
                "workers={workers:<2} streams={workers:<2} {requests:>4} reqs in {wall_ms:>8.1} \
                 ms = {rps:>8.0} req/s  speedup {speedup:>5.2}x  bitwise-match {ok}"
            );
            results.push(Measurement {
                backend: name,
                workers_requested: workers,
                workers_effective: workers.min(avail),
                streams: workers,
                requests,
                wall_ms,
                throughput_rps: rps,
                speedup_vs_1_worker: speedup,
                outputs_match_oracle: ok,
                cost_model,
                splices,
                plan_provenance,
            });
        }

        // Batch amortization on one worker: the same engine serving the
        // same requests with coalescing off (one submit/wait round-trip
        // per request) vs on (one pre-coalesced run_batch), so the
        // speedup isolates exactly what batching buys *within* the
        // serving tier — measured on the small `serve_amort` network
        // where those costs are visible. A raw run_with loop with a warm
        // scratch is also recorded (solo_run_ms) as the no-serving-tier
        // reference point. Each timed window runs the request set several
        // times, and each side keeps its best of `amort_trials` windows:
        // host load only ever slows a trial down.
        let inputs: Vec<Tensor> = (0..amort_batch).map(amort_input).collect();
        let amort_oracle = build_amort(backend)?;
        let mut seq_scratch = ExecScratch::new();
        amort_oracle.run_with(&inputs[0], &mut seq_scratch)?;
        let cycles = 8;
        let amort_trials = trials * 3;
        let mut solo_run_ms = f64::INFINITY;
        for _ in 0..amort_trials {
            let t = Instant::now();
            for _ in 0..cycles {
                for input in &inputs {
                    std::hint::black_box(amort_oracle.run_with(input, &mut seq_scratch)?);
                }
            }
            solo_run_ms = solo_run_ms.min(t.elapsed().as_secs_f64() * 1e3 / cycles as f64);
        }
        let engine = build_amort(backend)?.into_engine(ServeConfig {
            workers: 1,
            queue_depth: 64,
            max_batch: amort_batch,
            adaptive_batch: false,
        })?;
        // Grow the worker's batch-sized scratch off the clock — a partial
        // warm-up would leave the first measured run_batch paying the
        // full-batch buffer growth.
        engine.run_batch(inputs.clone())?;
        let mut sequential_ms = f64::INFINITY;
        let mut batched_ms = f64::INFINITY;
        for _ in 0..amort_trials {
            let t = Instant::now();
            for _ in 0..cycles {
                for input in &inputs {
                    let ticket = engine.submit(input.clone())?;
                    std::hint::black_box(engine.wait(ticket)?);
                }
            }
            sequential_ms = sequential_ms.min(t.elapsed().as_secs_f64() * 1e3 / cycles as f64);
            let t = Instant::now();
            for _ in 0..cycles {
                std::hint::black_box(engine.run_batch(inputs.clone())?);
            }
            batched_ms = batched_ms.min(t.elapsed().as_secs_f64() * 1e3 / cycles as f64);
        }
        let metrics = engine.metrics();
        engine.shutdown();
        let speedup = sequential_ms / batched_ms;
        println!(
            "run_batch({amort_batch}) on 1 worker (serve_amort net): sequential \
             {sequential_ms:.2} ms vs batched {batched_ms:.2} ms = {speedup:.2}x (solo run_with \
             loop {solo_run_ms:.2} ms)"
        );
        println!(
            "engine metrics: {} completed, {} dispatches / {} samples, p50 {} us, p99 {} us",
            metrics.completed,
            metrics.batches,
            metrics.batched_samples,
            metrics.p50_latency_us,
            metrics.p99_latency_us
        );
        amortizations.push(Amortization {
            backend: name,
            batch: amort_batch,
            sequential_ms,
            batched_ms,
            solo_run_ms,
            speedup,
        });
        metrics_rows.push(MetricsRow {
            backend: name,
            submitted: metrics.submitted,
            completed: metrics.completed,
            shed: metrics.shed,
            batches: metrics.batches,
            batched_samples: metrics.batched_samples,
            p50_latency_us: metrics.p50_latency_us,
            p99_latency_us: metrics.p99_latency_us,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve\",\n");
    json.push_str("  \"network\": \"vgg16_small\",\n");
    json.push_str("  \"session_threads\": 1,\n");
    json.push_str(&format!("  \"requests_per_stream\": {per_stream},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str(&format!(
        "  \"multi_stream_configs_skipped\": {multi_stream_configs_skipped},\n"
    ));
    json.push_str("  \"baseline\": \"workers=1 of the same backend\",\n");
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"workers_requested\": {}, \"workers_effective\": {}, \
             \"streams\": {}, \"requests\": {}, \"wall_ms\": {:.2}, \"throughput_rps\": {:.1}, \
             \"speedup_vs_1_worker\": {:.3}, \"outputs_match_oracle\": {}, \"cost_model\": \
             \"{}\", \"splices\": {}, \"plan_provenance\": \"{}\"}}{}\n",
            m.backend,
            m.workers_requested,
            m.workers_effective,
            m.streams,
            m.requests,
            m.wall_ms,
            m.throughput_rps,
            m.speedup_vs_1_worker,
            m.outputs_match_oracle,
            m.cost_model,
            m.splices,
            m.plan_provenance,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"batch_amortization\": [\n");
    for (i, a) in amortizations.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"network\": \"serve_amort\", \"backend\": \"{}\", \"batch\": {}, \
             \"sequential_ms\": {:.3}, \"batched_ms\": {:.3}, \"solo_run_ms\": {:.3}, \
             \"speedup\": {:.3}}}{}\n",
            a.backend,
            a.batch,
            a.sequential_ms,
            a.batched_ms,
            a.solo_run_ms,
            a.speedup,
            if i + 1 == amortizations.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"serve_metrics\": [\n");
    for (i, m) in metrics_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"submitted\": {}, \"completed\": {}, \"shed\": {}, \
             \"batches\": {}, \"batched_samples\": {}, \"p50_latency_us\": {}, \
             \"p99_latency_us\": {}}}{}\n",
            m.backend,
            m.submitted,
            m.completed,
            m.shed,
            m.batches,
            m.batched_samples,
            m.p50_latency_us,
            m.p99_latency_us,
            if i + 1 == metrics_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json)?;
    println!("\nwrote {out_path}");

    // Determinism gates the whole benchmark: serving timings are only
    // meaningful while every request matches its serial oracle bitwise.
    assert!(
        results.iter().all(|m| m.outputs_match_oracle),
        "served outputs must match the serial oracle bitwise"
    );
    // The acceptance signal: on a genuinely multi-core host, blocked
    // multi-stream throughput must scale with the worker pool. The floor
    // is enforced only in full mode — quick mode's tiny sample (CI on
    // shared runners) records the curve in the JSON and warns instead,
    // so one scheduling hiccup cannot fail a build with no code defect.
    // 1-core hosts skipped the configs above.
    if !multi_stream_configs_skipped {
        let blocked_best = results
            .iter()
            .filter(|m| m.backend == "blocked" && m.workers_requested > 1)
            .map(|m| m.speedup_vs_1_worker)
            .fold(0.0f64, f64::max);
        let floor = if avail >= 4 { 1.1 } else { 0.9 };
        if blocked_best <= floor {
            let msg = format!(
                "blocked multi-stream throughput did not scale: best speedup {blocked_best:.2}x \
                 on {avail} cores (floor {floor})"
            );
            assert!(quick, "{msg}");
            println!("warning ({} requests/stream is a small sample): {msg}", per_stream);
        }
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("bench_serve: {e}");
        std::process::exit(1);
    }
}
