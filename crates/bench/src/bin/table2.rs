//! Table II: non-square blocking on the ResNet analogue — the paper's
//! F28×56, H4×1 and H1×4 become F16×32, H4×1 and H1×4 at our 32² scale.

use bconv_bench::{classifier_config, header, hline, EVAL_SAMPLES};
use bconv_core::BlockingPattern;
use bconv_tensor::error::TensorError;
use bconv_tensor::init::seeded_rng;
use bconv_tensor::pad::PadMode;
use bconv_train::models::{NetStyle, SmallClassifier};
use bconv_train::trainer::{eval_classifier, train_classifier};

fn run() -> Result<(), TensorError> {
    header("Table II: non-square blocking on ResNet (small analogue)");
    let configs: [(&str, Option<BlockingPattern>); 4] = [
        ("baseline", None),
        ("F16x32", Some(BlockingPattern::Fixed { th: 16, tw: 32 })),
        ("H4x1", Some(BlockingPattern::Hierarchical { gh: 4, gw: 1 })),
        ("H1x4", Some(BlockingPattern::Hierarchical { gh: 1, gw: 4 })),
    ];
    hline(40);
    println!("{:<12} {:>12}", "config", "top-1");
    hline(40);
    let cfg = classifier_config();
    for (name, pattern) in configs {
        let mut net = SmallClassifier::new(NetStyle::ResNet, 8, 4, &mut seeded_rng(21))?;
        if let Some(p) = pattern {
            net.apply_blocking(&move |res| {
                let fits = match p {
                    BlockingPattern::Fixed { th, tw } => res >= th.min(tw),
                    BlockingPattern::Hierarchical { gh, gw } => res >= gh.max(gw),
                };
                fits.then_some((p, PadMode::Zero))
            });
        }
        train_classifier(&mut net, "table2", &cfg)?;
        let acc = eval_classifier(&mut net, "table2", EVAL_SAMPLES)?;
        println!("{:<12} {:>11.1}%", name, acc * 100.0);
    }
    hline(40);
    println!("paper: all three non-square configurations stay at or above the baseline");
    Ok(())
}

fn main() -> Result<(), TensorError> {
    run()
}
