//! Figure 6: impact of the block-padding mode (zero / replicate / reflect)
//! on classification accuracy under fixed blocking.

use bconv_bench::{classifier_config, header, hline, EVAL_SAMPLES};
use bconv_core::BlockingPattern;
use bconv_tensor::error::TensorError;
use bconv_tensor::init::seeded_rng;
use bconv_tensor::pad::PadMode;
use bconv_train::models::{NetStyle, SmallClassifier};
use bconv_train::trainer::{eval_classifier, train_classifier, TrainConfig};

fn run() -> Result<(), TensorError> {
    header("Figure 6: block padding mode vs accuracy (F16 fixed blocking)");
    hline(58);
    print!("{:<16}", "network");
    for mode in PadMode::ALL {
        print!("{:>12}", mode.name());
    }
    println!();
    hline(58);
    for style in [NetStyle::Vgg, NetStyle::ResNet, NetStyle::MobileNet] {
        let cfg = if style == NetStyle::MobileNet {
            TrainConfig { steps: 600, ..classifier_config() }
        } else {
            classifier_config()
        };
        print!("{:<16}", style.name());
        for mode in PadMode::ALL {
            let mut net = SmallClassifier::new(style, 8, 4, &mut seeded_rng(31))?;
            net.apply_blocking(&move |res| {
                (res >= 16).then_some((BlockingPattern::fixed(16), mode))
            });
            let exp = format!("fig6-{style:?}");
            train_classifier(&mut net, &exp, &cfg)?;
            let acc = eval_classifier(&mut net, &exp, EVAL_SAMPLES)?;
            print!("{:>11.1}%", acc * 100.0);
        }
        println!();
    }
    hline(58);
    println!("paper: no single best mode — zero wins on some nets, replicate on others");
    Ok(())
}

fn main() -> Result<(), TensorError> {
    run()
}
