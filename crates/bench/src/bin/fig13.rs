//! Figure 13: the variant designs A–G against the off-chip baseline —
//! BRAM consumption and theoretical vs real performance. The paper's
//! claims: ~10% BRAM increase over the baseline despite keeping all
//! intermediate data on-chip, real performance above the baseline, and a
//! theoretical-vs-real gap caused by filter-transfer CPU interrupts.

use bconv_accel::baseline::{run_baseline, TileConfig};
use bconv_accel::fusion::{table6_configs, vgg16_shapes, QIU_PUBLISHED_BRAM18};
use bconv_accel::platform::zc706;
use bconv_bench::hline;

fn main() {
    let shapes = vgg16_shapes();
    let platform = zc706();

    println!("Figure 13: resource utilisation and performance vs the baseline");
    hline(78);
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>14} {:>14}",
        "design", "BRAM18", "latency ms", "real GOP/s", "theo GOP/s", "feat Mbits"
    );
    hline(78);

    // Baseline: Qiu-style accelerator, 16-bit, 2 PEs, 14x14 tiles,
    // intermediate maps through DRAM.
    let tile = TileConfig { tr: 14, tc: 14, tm: 64, tn: 64, npe: 2 };
    let base = run_baseline(&shapes, &tile, &platform, 16);
    // The baseline row uses the published implementation's utilisation
    // (Qiu et al. report 486/545 BRAM36); our tile-level analytic model
    // covers only the data/filter buffers.
    let base_bram = QIU_PUBLISHED_BRAM18;
    println!(
        "{:<10} {:>8} {:>12.1} {:>12.1} {:>14} {:>14.1}",
        "baseline",
        base_bram,
        base.latency_ms(&platform),
        base.gops(&platform),
        "-",
        base.feature_traffic_bits as f64 / 1e6
    );

    for d in table6_configs() {
        let e = d.evaluate(&shapes, &platform);
        println!(
            "{:<10} {:>8} {:>12.1} {:>12.1} {:>14.1} {:>14.1}",
            d.name,
            e.bram18,
            e.latency_ms(&platform),
            e.gops(&platform),
            e.theoretical_gops(&platform),
            e.feature_traffic_bits as f64 / 1e6
        );
    }
    hline(78);
    let a = table6_configs()[0].evaluate(&shapes, &platform);
    println!(
        "BRAM increase of A over baseline: {:+.1}%  (paper: ~10%)",
        100.0 * (a.bram18 as f64 / base_bram as f64 - 1.0)
    );
}
