//! Figure 7: 8-bit quantization of baseline and F-blocked networks, with
//! both training-aware quantization (fake-quantized weights during
//! training) and post-training quantization (quantize a float-trained
//! model's weights).

use bconv_bench::{classifier_config, header, hline, EVAL_SAMPLES};
use bconv_tensor::error::TensorError;
use bconv_tensor::init::seeded_rng;
use bconv_train::models::{fixed_rule, NetStyle, SmallClassifier};
use bconv_train::trainer::{eval_classifier, train_classifier, TrainConfig};

fn train_and_eval(
    style: NetStyle,
    blocked: bool,
    qat: bool,
    ptq: bool,
) -> Result<f64, TensorError> {
    let cfg = if style == NetStyle::MobileNet {
        TrainConfig { steps: 600, ..classifier_config() }
    } else {
        classifier_config()
    };
    let mut net = SmallClassifier::new(style, 8, 4, &mut seeded_rng(33))?;
    if blocked {
        net.apply_blocking(&fixed_rule(16));
    }
    if qat {
        net.set_fake_quant(Some(8));
    }
    let exp = format!("fig7-{style:?}-{blocked}");
    train_classifier(&mut net, &exp, &cfg)?;
    if ptq {
        // Post-training: quantize the float-trained weights at inference.
        net.set_fake_quant(Some(8));
    }
    eval_classifier(&mut net, &exp, EVAL_SAMPLES)
}

fn run() -> Result<(), TensorError> {
    header("Figure 7: 8-bit quantization (baseline vs F16-blocked)");
    hline(86);
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "network", "float base", "float BConv", "QAT base", "QAT BConv", "PTQ BConv"
    );
    hline(86);
    for style in [NetStyle::Vgg, NetStyle::ResNet, NetStyle::MobileNet] {
        let float_base = train_and_eval(style, false, false, false)?;
        let float_blocked = train_and_eval(style, true, false, false)?;
        let qat_base = train_and_eval(style, false, true, false)?;
        let qat_blocked = train_and_eval(style, true, true, false)?;
        let ptq_blocked = train_and_eval(style, true, false, true)?;
        println!(
            "{:<16} {:>11.1}% {:>11.1}% {:>13.1}% {:>13.1}% {:>11.1}%",
            style.name(),
            float_base * 100.0,
            float_blocked * 100.0,
            qat_base * 100.0,
            qat_blocked * 100.0,
            ptq_blocked * 100.0
        );
    }
    hline(86);
    println!("paper: with QAT, 8-bit blocked networks match or beat non-blocked ones");
    Ok(())
}

fn main() -> Result<(), TensorError> {
    run()
}
