//! Quantized-deployment benchmark: float vs quantized execution at the
//! paper's bitwidths (16/8-bit for the VGG-16 accelerator, 8-bit
//! activations × 4-bit weights for VDSR, §III-C / Figure 7), on the direct
//! (unblocked, dense per layer) and blocked-fused schedules.
//!
//! Writes `BENCH_quant.json` with one entry per (network, precision,
//! schedule): median latency, relative error against the **float run of
//! the same schedule** (so the metric isolates quantization error from the
//! block-boundary perturbation the paper recovers by fine-tuning),
//! off-chip feature-map traffic in elements *and in bits at the activation
//! width* — the paper's memory metric, which shrinks with bitwidth even
//! when the element count is schedule-invariant — and the resolved conv
//! kernel(s) the session compiled ("direct", "im2col-gemm", or a `+`-joined
//! set when layers split).
//!
//! Latency note: quantized convolutions run the integer fast paths
//! wherever the session's kernel policy resolves to them — the exact-f32
//! plane kernel for narrow 3×3 layers, i16 patch matrices against weight
//! rows packed once at build time otherwise, widening to i32 (i64 only
//! where the conservative overflow guard demands it) — so quantized
//! `median_us` competes directly with the float GEMM rather than
//! modelling arithmetic at scalar-simulation speed.
//!
//! Timing protocol: within each network, reps are **interleaved**
//! round-robin across the configs rather than timed config-by-config.
//! Sustained AVX-512 work drops the core's frequency license, so in a
//! sequential protocol whichever config runs later measures on a slower
//! clock — on this harness that skew exceeds the float-vs-quantized gap
//! being measured. Round-robin gives every config the same thermal mix
//! of neighbours.
//!
//! Usage: `bench_quant [--quick] [--out PATH]`

use bconv_core::plan::NetworkPlan;
use bconv_graph::{Backend, Session, SessionBuilder};
use bconv_models::layer::LayerKind;
use bconv_models::Network;
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::{Tensor, TensorError};

/// One (precision, schedule) configuration. `bits: None` is float.
struct Config {
    name: &'static str,
    bits: Option<(u8, u8)>, // (weight_bits, act_bits)
    blocked: bool,
}

struct Measurement {
    network: &'static str,
    name: &'static str,
    weight_bits: u8, // 32 = float
    act_bits: u8,
    blocked: bool,
    kernel: String,
    median_us: f64,
    min_us: f64,
    rel_err_vs_float_same_schedule: f64,
    offchip_elems: usize,
    offchip_bits: u64,
}

const CONFIGS: [Config; 8] = [
    Config { name: "float_direct", bits: None, blocked: false },
    Config { name: "float_blocked", bits: None, blocked: true },
    Config { name: "w8a16_direct", bits: Some((8, 16)), blocked: false },
    Config { name: "w8a16_blocked", bits: Some((8, 16)), blocked: true },
    Config { name: "w8a8_direct", bits: Some((8, 8)), blocked: false },
    Config { name: "w8a8_blocked", bits: Some((8, 8)), blocked: true },
    Config { name: "w4a8_direct", bits: Some((4, 8)), blocked: false },
    Config { name: "w4a8_blocked", bits: Some((4, 8)), blocked: true },
];

fn conv_count(net: &Network) -> usize {
    net.layers.iter().filter(|l| matches!(l.kind, LayerKind::Conv { .. })).count()
}

fn build(net: &Network, cfg: &Config) -> Result<Session, TensorError> {
    let backend = match cfg.bits {
        None => Backend::Blocked,
        Some((w, a)) => Backend::Quantized { weight_bits: w, act_bits: a },
    };
    let mut b: SessionBuilder =
        Session::builder().network(net.clone()).backend(backend).seed(2018).threads(1);
    if !cfg.blocked {
        // Direct schedule: no blocking, every conv a whole-map segment
        // (dense QConv2d on the quantized backend).
        b = b.plan(NetworkPlan::unblocked(conv_count(net)));
    }
    b.build()
}

/// The distinct conv kernel kinds a session resolved, `+`-joined — one
/// value per config so the baseline records which code path produced each
/// latency number.
fn kernel_summary(session: &Session) -> String {
    let mut kinds: Vec<&'static str> = session.conv_kernels().into_iter().map(|(_, k)| k).collect();
    kinds.sort_unstable();
    kinds.dedup();
    if kinds.is_empty() {
        "none".to_string()
    } else {
        kinds.join("+")
    }
}

fn rel_err(a: &Tensor, b: &Tensor) -> Result<f64, TensorError> {
    let mag = b.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
    Ok((a.max_abs_diff(b)? / mag) as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_quant.json".to_string());
    let reps = if quick { 7 } else { 15 };
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());

    let networks: [(&'static str, Network); 2] = [
        ("vgg16_small", bconv_models::small::vgg16_small(32)),
        ("vdsr_small", bconv_models::small::vdsr_small(24, 6, 8)),
    ];

    let mut results: Vec<Measurement> = Vec::new();
    for (net_name, net) in &networks {
        let s = net.input;
        let input = uniform_tensor([1, s.c, s.h, s.w], -1.0, 1.0, &mut seeded_rng(7));
        // Float runs of both schedules: the accuracy yardsticks. Comparing
        // same-schedule isolates quantization error from block-boundary
        // error (which the float configs carry identically).
        let mut float_out: [Option<Tensor>; 2] = [None, None];

        println!("\n{net_name}: {reps} reps per config, interleaved");
        // Build and warm every config first, then time with the reps
        // interleaved round-robin across configs (see the timing-protocol
        // note in the module docs).
        let sessions = CONFIGS
            .iter()
            .map(|cfg| {
                let session = build(net, cfg)?;
                let report = session.run(&input)?;
                Ok((session, report))
            })
            .collect::<Result<Vec<_>, TensorError>>()?;
        let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); CONFIGS.len()];
        for _ in 0..reps {
            for ((session, _), samples) in sessions.iter().zip(&mut times) {
                let t = std::time::Instant::now();
                std::hint::black_box(session.run(&input)?);
                samples.push(t.elapsed().as_nanos() as f64 / 1000.0);
            }
        }
        for ((cfg, (session, report)), mut samples) in CONFIGS.iter().zip(&sessions).zip(times) {
            if cfg.bits.is_none() {
                float_out[cfg.blocked as usize] = Some(report.output.clone());
            }
            let yardstick = float_out[cfg.blocked as usize]
                .as_ref()
                .ok_or("float configs precede quantized ones")?;
            let kernel = kernel_summary(session);
            samples.sort_by(f64::total_cmp);
            let (us, min_us) = (samples[samples.len() / 2], samples[0]);
            let err = rel_err(&report.output, yardstick)?;
            let (wb, ab) = cfg.bits.unwrap_or((32, 32));
            println!(
                "{:<14} median {:>9.1} us  rel-err {:>8.5}  off-chip {:>8} elems = {:>9} bits  [{}]",
                cfg.name,
                us,
                err,
                report.stats.offchip_elems,
                report.stats.offchip_bits(),
                kernel,
            );
            results.push(Measurement {
                network: net_name,
                name: cfg.name,
                weight_bits: wb,
                act_bits: ab,
                blocked: cfg.blocked,
                kernel,
                median_us: us,
                min_us,
                rel_err_vs_float_same_schedule: err,
                offchip_elems: report.stats.offchip_elems,
                offchip_bits: report.stats.offchip_bits(),
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"quant\",\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str("  \"float_bits\": 32,\n");
    json.push_str("  \"reference\": \"float run of the same schedule\",\n");
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"network\": \"{}\", \"name\": \"{}\", \"weight_bits\": {}, \
             \"act_bits\": {}, \"blocked\": {}, \"kernel\": \"{}\", \"median_us\": {:.1}, \
             \"min_us\": {:.1}, \"rel_err_vs_float_same_schedule\": {:.6}, \
             \"offchip_elems\": {}, \"offchip_bits\": {}}}{}\n",
            m.network,
            m.name,
            m.weight_bits,
            m.act_bits,
            m.blocked,
            m.kernel,
            m.median_us,
            m.min_us,
            m.rel_err_vs_float_same_schedule,
            m.offchip_elems,
            m.offchip_bits,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json)?;
    println!("\nwrote {out_path}");

    // Invariants the paper's memory figures rest on, checked for EVERY
    // quantized config (not just one per act width): within one schedule
    // the element traffic is bitwidth-invariant, bits are exactly
    // elems × act_bits, and any sub-32-bit width strictly shrinks traffic
    // relative to the float run of the same schedule.
    for (net_name, _) in &networks {
        for blocked in [false, true] {
            let float_m = results
                .iter()
                .find(|m| m.network == *net_name && m.weight_bits == 32 && m.blocked == blocked)
                .ok_or("float entry exists per schedule")?;
            for m in results
                .iter()
                .filter(|m| m.network == *net_name && m.blocked == blocked && m.weight_bits != 32)
            {
                assert_eq!(
                    m.offchip_elems, float_m.offchip_elems,
                    "{net_name} {}: element traffic must be width-invariant",
                    m.name
                );
                assert_eq!(
                    m.offchip_bits,
                    m.offchip_elems as u64 * m.act_bits as u64,
                    "{net_name} {}: bits must be elems x act width",
                    m.name
                );
                assert!(
                    m.offchip_bits < float_m.offchip_bits,
                    "{net_name} {}: off-chip bits must shrink vs float ({} !< {})",
                    m.name,
                    m.offchip_bits,
                    float_m.offchip_bits
                );
            }
        }
    }
    // Quantized outputs stay within a sane envelope of the float reference,
    // and wider activations are at least as accurate on the same schedule.
    for m in &results {
        // Sanity envelope, not an accuracy claim: >=8-bit weights must
        // track the float schedule closely; 4-bit weights on 13 stacked
        // toy-width layers (the paper uses w4 only for 6-layer VDSR) are
        // allowed to degrade but must not blow up.
        let envelope = if m.weight_bits >= 8 { 0.5 } else { 1.5 };
        assert!(
            m.rel_err_vs_float_same_schedule < envelope,
            "{} {} drifted from its float schedule: {}",
            m.network,
            m.name,
            m.rel_err_vs_float_same_schedule
        );
    }
    Ok(())
}
