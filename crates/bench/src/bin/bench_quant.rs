//! Quantized-deployment benchmark: float vs quantized execution at the
//! paper's bitwidths (16/8-bit for the VGG-16 accelerator, 8-bit
//! activations × 4-bit weights for VDSR, §III-C / Figure 7), on the direct
//! (unblocked, dense per layer) and blocked-fused schedules.
//!
//! Writes `BENCH_quant.json` with one entry per (network, precision,
//! schedule): median latency, relative error against the **float run of
//! the same schedule** (so the metric isolates quantization error from the
//! block-boundary perturbation the paper recovers by fine-tuning), and
//! off-chip feature-map traffic in elements *and in bits at the activation
//! width* — the paper's memory metric, which shrinks with bitwidth even
//! when the element count is schedule-invariant.
//!
//! Latency note: the quantized backend runs the scalar integer-simulation
//! kernel (i64 accumulators), not the im2col+GEMM float kernels, so its
//! `median_us` models arithmetic faithfully rather than competitively.
//!
//! Usage: `bench_quant [--quick] [--out PATH]`

use bconv_bench::session_times;
use bconv_core::plan::NetworkPlan;
use bconv_graph::{Backend, Session, SessionBuilder};
use bconv_models::layer::LayerKind;
use bconv_models::Network;
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::Tensor;

/// One (precision, schedule) configuration. `bits: None` is float.
struct Config {
    name: &'static str,
    bits: Option<(u8, u8)>, // (weight_bits, act_bits)
    blocked: bool,
}

struct Measurement {
    network: &'static str,
    name: &'static str,
    weight_bits: u8, // 32 = float
    act_bits: u8,
    blocked: bool,
    median_us: f64,
    min_us: f64,
    rel_err_vs_float_same_schedule: f64,
    offchip_elems: usize,
    offchip_bits: u64,
}

const CONFIGS: [Config; 8] = [
    Config { name: "float_direct", bits: None, blocked: false },
    Config { name: "float_blocked", bits: None, blocked: true },
    Config { name: "w8a16_direct", bits: Some((8, 16)), blocked: false },
    Config { name: "w8a16_blocked", bits: Some((8, 16)), blocked: true },
    Config { name: "w8a8_direct", bits: Some((8, 8)), blocked: false },
    Config { name: "w8a8_blocked", bits: Some((8, 8)), blocked: true },
    Config { name: "w4a8_direct", bits: Some((4, 8)), blocked: false },
    Config { name: "w4a8_blocked", bits: Some((4, 8)), blocked: true },
];

fn conv_count(net: &Network) -> usize {
    net.layers.iter().filter(|l| matches!(l.kind, LayerKind::Conv { .. })).count()
}

fn build(net: &Network, cfg: &Config) -> Session {
    let backend = match cfg.bits {
        None => Backend::Blocked,
        Some((w, a)) => Backend::Quantized { weight_bits: w, act_bits: a },
    };
    let mut b: SessionBuilder =
        Session::builder().network(net.clone()).backend(backend).seed(2018).threads(1);
    if !cfg.blocked {
        // Direct schedule: no blocking, every conv a whole-map segment
        // (dense QConv2d on the quantized backend).
        b = b.plan(NetworkPlan::unblocked(conv_count(net)));
    }
    b.build().expect("bench session builds")
}

fn rel_err(a: &Tensor, b: &Tensor) -> f64 {
    let mag = b.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
    (a.max_abs_diff(b).expect("comparable outputs") / mag) as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_quant.json".to_string());
    let reps = if quick { 7 } else { 15 };
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());

    let networks: [(&'static str, Network); 2] = [
        ("vgg16_small", bconv_models::small::vgg16_small(32)),
        ("vdsr_small", bconv_models::small::vdsr_small(24, 6, 8)),
    ];

    let mut results: Vec<Measurement> = Vec::new();
    for (net_name, net) in &networks {
        let s = net.input;
        let input = uniform_tensor([1, s.c, s.h, s.w], -1.0, 1.0, &mut seeded_rng(7));
        // Float runs of both schedules: the accuracy yardsticks. Comparing
        // same-schedule isolates quantization error from block-boundary
        // error (which the float configs carry identically).
        let mut float_out: [Option<Tensor>; 2] = [None, None];

        println!("\n{net_name}: {reps} reps per config");
        for cfg in &CONFIGS {
            let session = build(net, cfg);
            let report = session.run(&input).expect("bench run");
            if cfg.bits.is_none() {
                float_out[cfg.blocked as usize] = Some(report.output.clone());
            }
            let yardstick = float_out[cfg.blocked as usize]
                .as_ref()
                .expect("float configs precede quantized ones");
            let (us, min_us) = session_times(&session, &input, reps);
            let err = rel_err(&report.output, yardstick);
            let (wb, ab) = cfg.bits.unwrap_or((32, 32));
            println!(
                "{:<14} median {:>9.1} us  rel-err {:>8.5}  off-chip {:>8} elems = {:>9} bits",
                cfg.name,
                us,
                err,
                report.stats.offchip_elems,
                report.stats.offchip_bits(),
            );
            results.push(Measurement {
                network: net_name,
                name: cfg.name,
                weight_bits: wb,
                act_bits: ab,
                blocked: cfg.blocked,
                median_us: us,
                min_us,
                rel_err_vs_float_same_schedule: err,
                offchip_elems: report.stats.offchip_elems,
                offchip_bits: report.stats.offchip_bits(),
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"quant\",\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str("  \"float_bits\": 32,\n");
    json.push_str("  \"reference\": \"float run of the same schedule\",\n");
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"network\": \"{}\", \"name\": \"{}\", \"weight_bits\": {}, \
             \"act_bits\": {}, \"blocked\": {}, \"median_us\": {:.1}, \"min_us\": {:.1}, \
             \"rel_err_vs_float_same_schedule\": {:.6}, \"offchip_elems\": {}, \"offchip_bits\": {}}}{}\n",
            m.network,
            m.name,
            m.weight_bits,
            m.act_bits,
            m.blocked,
            m.median_us,
            m.min_us,
            m.rel_err_vs_float_same_schedule,
            m.offchip_elems,
            m.offchip_bits,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");

    // Invariants the paper's memory figures rest on, checked for EVERY
    // quantized config (not just one per act width): within one schedule
    // the element traffic is bitwidth-invariant, bits are exactly
    // elems × act_bits, and any sub-32-bit width strictly shrinks traffic
    // relative to the float run of the same schedule.
    for (net_name, _) in &networks {
        for blocked in [false, true] {
            let float_m = results
                .iter()
                .find(|m| m.network == *net_name && m.weight_bits == 32 && m.blocked == blocked)
                .expect("float entry exists per schedule");
            for m in results
                .iter()
                .filter(|m| m.network == *net_name && m.blocked == blocked && m.weight_bits != 32)
            {
                assert_eq!(
                    m.offchip_elems, float_m.offchip_elems,
                    "{net_name} {}: element traffic must be width-invariant",
                    m.name
                );
                assert_eq!(
                    m.offchip_bits,
                    m.offchip_elems as u64 * m.act_bits as u64,
                    "{net_name} {}: bits must be elems x act width",
                    m.name
                );
                assert!(
                    m.offchip_bits < float_m.offchip_bits,
                    "{net_name} {}: off-chip bits must shrink vs float ({} !< {})",
                    m.name,
                    m.offchip_bits,
                    float_m.offchip_bits
                );
            }
        }
    }
    // Quantized outputs stay within a sane envelope of the float reference,
    // and wider activations are at least as accurate on the same schedule.
    for m in &results {
        // Sanity envelope, not an accuracy claim: >=8-bit weights must
        // track the float schedule closely; 4-bit weights on 13 stacked
        // toy-width layers (the paper uses w4 only for 6-layer VDSR) are
        // allowed to degrade but must not blow up.
        let envelope = if m.weight_bits >= 8 { 0.5 } else { 1.5 };
        assert!(
            m.rel_err_vs_float_same_schedule < envelope,
            "{} {} drifted from its float schedule: {}",
            m.network,
            m.name,
            m.rel_err_vs_float_same_schedule
        );
    }
}
