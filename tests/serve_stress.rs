//! Concurrency stress for the [`ServeEngine`]: many client threads
//! hammering one shared engine through a deliberately tiny queue must
//! complete without deadlock, stay within the bounded queue memory, and
//! return every request's serial-oracle output bitwise.
//!
//! The queue depth is far below the number of outstanding requests, so
//! clients spend much of the test blocked in `submit` — the backpressure
//! path — while workers coalesce whatever mixture of requests the timing
//! produces. Determinism must hold through all of it.

use bconv_graph::{Backend, ServeConfig, ServeEngine, Session};
use bconv_models::builder::{conv, maxpool, NetBuilder};
use bconv_models::{ActShape, Network};
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::Tensor;

fn stress_net() -> Network {
    let mut b = NetBuilder::new("stress", ActShape { c: 2, h: 16, w: 16 });
    b.push("conv1", conv(3, 1, 1, 2, 4));
    b.push("conv2", conv(3, 1, 1, 4, 4));
    b.push("pool", maxpool(2, 2, 0));
    b.push("conv3", conv(3, 1, 1, 4, 2));
    b.build()
}

fn build_session(backend: Backend) -> Session {
    Session::builder()
        .network(stress_net())
        .backend(backend)
        .seed(2018)
        .threads(1)
        .relu_after_conv(true)
        .build()
        .unwrap()
}

/// The deterministic request of client `c`, iteration `i` (batch size
/// varies so coalesced batches land on uneven boundaries).
fn request(c: usize, i: usize) -> Tensor {
    let n = 1 + (c + i) % 2;
    uniform_tensor([n, 2, 16, 16], -1.0, 1.0, &mut seeded_rng((c as u64) << 32 | i as u64))
}

/// Runs `clients` threads x `per_client` interleaved requests against one
/// shared engine, checking every output bitwise against `oracle`.
fn hammer(engine: &ServeEngine, oracle: &Session, clients: usize, per_client: usize) {
    // Serial oracle outputs, precomputed so client threads only compare.
    let expected: Vec<Vec<Tensor>> = (0..clients)
        .map(|c| (0..per_client).map(|i| oracle.run(&request(c, i)).unwrap().output).collect())
        .collect();
    std::thread::scope(|scope| {
        for (c, want) in expected.iter().enumerate() {
            scope.spawn(move || {
                // Interleave: keep two tickets in flight and redeem them in
                // reverse submission order, so waits and submits overlap.
                let mut i = 0;
                while i < per_client {
                    let t0 = engine.submit(request(c, i)).unwrap();
                    let t1 =
                        (i + 1 < per_client).then(|| engine.submit(request(c, i + 1)).unwrap());
                    if let Some(t1) = t1 {
                        let out1 = engine.wait(t1).unwrap().output;
                        assert_eq!(
                            out1.data(),
                            want[i + 1].data(),
                            "client {c} request {} diverged",
                            i + 1
                        );
                    }
                    let out0 = engine.wait(t0).unwrap().output;
                    assert_eq!(out0.data(), want[i].data(), "client {c} request {i} diverged");
                    i += 2;
                }
            });
        }
    });
}

#[test]
fn blocked_engine_survives_many_clients_through_a_tiny_queue() {
    // 8 clients x up to 2 in-flight each = 16 outstanding through a
    // 2-deep queue: submissions block (backpressure) most of the time.
    let engine = build_session(Backend::Blocked)
        .into_engine(ServeConfig {
            workers: 4,
            queue_depth: 2,
            max_batch: 3,
            ..ServeConfig::default()
        })
        .unwrap();
    let oracle = build_session(Backend::Blocked);
    hammer(&engine, &oracle, 8, 16);
    engine.shutdown();
}

/// Deadlock canary: the same 8-clients-through-a-2-deep-queue stress, but
/// run on a watchdog thread with a hard timeout, so a lock-ordering
/// regression in the serve engine fails this test in about a minute
/// instead of hanging CI until the job-level timeout kills it. The static
/// L5 lock-order lint proves the code as written cannot hold a lock
/// across recv/wait; this test proves the running engine agrees.
#[test]
fn deadlock_canary_fails_fast_instead_of_hanging() {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let engine = build_session(Backend::Blocked)
            .into_engine(ServeConfig {
                workers: 4,
                queue_depth: 2,
                max_batch: 3,
                ..ServeConfig::default()
            })
            .unwrap();
        let oracle = build_session(Backend::Blocked);
        hammer(&engine, &oracle, 8, 8);
        engine.shutdown();
        let _ = done_tx.send(());
    });
    // Generous bound: the stress itself finishes in single-digit seconds;
    // only a wedged engine (worker parked in recv with a lock held, lost
    // condvar wakeup, ...) can take this long.
    if done_rx.recv_timeout(std::time::Duration::from_secs(60)).is_err() {
        panic!(
            "serve engine deadlock canary tripped: 8 clients through a 2-deep queue \
             did not finish within 60s — a lock is likely held across recv/wait"
        );
    }
}

#[test]
fn quantized_engine_serves_concurrent_clients() {
    let backend = Backend::Quantized { weight_bits: 8, act_bits: 8 };
    let engine = build_session(backend)
        .into_engine(ServeConfig {
            workers: 2,
            queue_depth: 2,
            max_batch: 4,
            ..ServeConfig::default()
        })
        .unwrap();
    let oracle = build_session(backend);
    hammer(&engine, &oracle, 4, 6);
}

#[test]
fn reference_engine_serves_concurrent_clients() {
    let engine = build_session(Backend::Reference)
        .into_engine(ServeConfig {
            workers: 2,
            queue_depth: 4,
            max_batch: 2,
            ..ServeConfig::default()
        })
        .unwrap();
    let oracle = build_session(Backend::Reference);
    hammer(&engine, &oracle, 4, 6);
}

#[test]
fn mixed_entry_points_share_one_engine() {
    // Ticketed clients and a run_batch caller interleave on one engine.
    let engine = build_session(Backend::Blocked)
        .into_engine(ServeConfig {
            workers: 2,
            queue_depth: 2,
            max_batch: 3,
            ..ServeConfig::default()
        })
        .unwrap();
    let oracle = build_session(Backend::Blocked);
    let batch_inputs: Vec<Tensor> = (0..6).map(|i| request(99, i)).collect();
    let batch_want: Vec<Tensor> =
        batch_inputs.iter().map(|t| oracle.run(t).unwrap().output).collect();
    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let oracle_ref = &oracle;
        scope.spawn(move || hammer(engine_ref, oracle_ref, 2, 8));
        scope.spawn(move || {
            for _ in 0..4 {
                let got = engine_ref.run_batch(batch_inputs.clone()).unwrap();
                for (g, w) in got.iter().zip(&batch_want) {
                    assert_eq!(g.output.data(), w.data(), "run_batch output diverged mid-stress");
                }
            }
        });
    });
}
