//! Cost-model / splice contract tests: a fusion cost model is a **schedule
//! policy** — swapping [`ElementBudget`] for [`AccelCost`] (same capacity)
//! must never change what a session computes, only how much off-chip
//! traffic the plan needs. Spliced pipelines are bitwise identical to
//! their unspliced counterparts (float and quantized, at any thread
//! count), `offchip_bits()` never increases when a splice is taken — and
//! strictly decreases when one is — and the `PlanReport` records exactly
//! the decisions the segments embody.
//!
//! (The working-set peak is *allowed* to grow under a splice: the boundary
//! map moves from DRAM into the on-chip extra buffer, which is the whole
//! trade.)

use bconv_accel::platform::zc706;
use bconv_graph::{AccelCost, Backend, Segment, Session, SessionBuilder};
use bconv_models::builder::{conv, maxpool, NetBuilder};
use bconv_models::{ActShape, Network};
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::PadMode;
use proptest::prelude::*;

/// A random-but-valid small network: stride-1 convs on a 16x16 map (so
/// every hierarchical grid divides), optional pooling tail — the same
/// family as the serving determinism suite.
fn random_net(c1: usize, c2: usize, with_pool: bool) -> Network {
    let mut b = NetBuilder::new("splice_prop", ActShape { c: 2, h: 16, w: 16 });
    b.push("conv1", conv(3, 1, 1, 2, c1));
    b.push("conv2", conv(3, 1, 1, c1, c2));
    if with_pool {
        b.push("pool", maxpool(2, 2, 0));
        b.push("conv3", conv(3, 1, 1, c2, 2));
    }
    b.build()
}

fn builder(net: &Network, backend: Backend, seed: u64) -> SessionBuilder {
    Session::builder()
        .network(net.clone())
        .backend(backend)
        .pad(PadMode::Zero)
        .seed(seed)
        .threads(1)
        .relu_after_conv(true)
}

/// The AccelCost twin of an element budget at the plan's word width: cuts
/// land at the same stage pairs, splices become available.
fn accel_twin(budget_elems: usize, bits: u8) -> AccelCost {
    AccelCost::with_buffers(zc706(), budget_elems as u64 * bits as u64 / 2, 1 << 24)
}

fn plan_bits(backend: Backend) -> u8 {
    match backend {
        Backend::Quantized { act_bits, .. } => act_bits,
        _ => 32,
    }
}

const BACKENDS: [Backend; 2] =
    [Backend::Blocked, Backend::Quantized { weight_bits: 8, act_bits: 8 }];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Spliced vs unspliced plans: bitwise-identical outputs (float and
    /// quantized), off-chip traffic never increases, and strictly
    /// decreases whenever a splice was taken.
    #[test]
    fn spliced_plans_are_bitwise_identical_and_never_cost_traffic(
        c1 in 1usize..4,
        c2 in 1usize..4,
        pool_idx in 0usize..2,
        budget in 150usize..600,
        seed in 0u64..1000,
    ) {
        let net = random_net(c1, c2, pool_idx == 1);
        let input = uniform_tensor([1, 2, 16, 16], -1.0, 1.0, &mut seeded_rng(seed ^ 0x51CE));
        for backend in BACKENDS {
            let unspliced =
                builder(&net, backend, seed).on_chip_budget(budget).build().expect("budget session");
            let spliced = builder(&net, backend, seed)
                .cost_model(accel_twin(budget, plan_bits(backend)))
                .build()
                .expect("accel session");
            prop_assert!(unspliced.plan().report().splices.is_empty());

            let a = unspliced.run(&input).expect("unspliced run");
            let b = spliced.run(&input).expect("spliced run");
            prop_assert_eq!(
                a.output.data(), b.output.data(),
                "{:?} budget={}: cost model changed numerics", backend, budget
            );
            prop_assert!(
                b.stats.offchip_elems <= a.stats.offchip_elems,
                "{:?} budget={}: splice increased off-chip elems ({} > {})",
                backend, budget, b.stats.offchip_elems, a.stats.offchip_elems
            );
            prop_assert!(b.stats.offchip_bits() <= a.stats.offchip_bits());

            let report = spliced.plan().report();
            let spliced_segments = spliced
                .plan()
                .segments()
                .iter()
                .filter(|s| matches!(s, Segment::Spliced { .. }))
                .count();
            if report.splices.is_empty() {
                // No splice taken: the plans must agree exactly.
                prop_assert_eq!(spliced_segments, 0);
                prop_assert_eq!(a.stats, b.stats, "{:?} budget={}", backend, budget);
            } else {
                prop_assert!(spliced_segments > 0);
                // Each splice saves exactly the boundary map's round trip.
                prop_assert_eq!(
                    a.stats.offchip_elems - b.stats.offchip_elems,
                    report.spliced_offchip_elems_saved(),
                    "{:?} budget={}: report disagrees with measured savings", backend, budget
                );
                prop_assert!(b.stats.offchip_bits() < a.stats.offchip_bits());
            }
        }
    }

    /// Spliced execution is a schedule: thread count never leaks into
    /// outputs or stats.
    #[test]
    fn spliced_execution_is_thread_invariant(
        c1 in 1usize..4,
        seed in 0u64..1000,
    ) {
        let net = random_net(c1, 2, true);
        let input = uniform_tensor([2, 2, 16, 16], -1.0, 1.0, &mut seeded_rng(seed ^ 0x7A1));
        // A tight twin budget that forces a cut (and therefore a splice).
        let budget = 150;
        let serial = builder(&net, Backend::Blocked, seed)
            .cost_model(accel_twin(budget, 32))
            .build()
            .expect("serial session");
        prop_assert!(!serial.plan().report().splices.is_empty(), "no splice to exercise");
        let want = serial.run(&input).expect("serial run");
        for threads in [2usize, 8] {
            let s = builder(&net, Backend::Blocked, seed)
                .cost_model(accel_twin(budget, 32))
                .threads(threads)
                .build()
                .expect("threaded session");
            let got = s.run(&input).expect("threaded run");
            prop_assert_eq!(got.output.data(), want.output.data(), "threads={}", threads);
            prop_assert_eq!(got.stats, want.stats, "threads={}", threads);
        }
    }
}

/// The ISSUE acceptance scenario on vgg16_small: under a capacity that
/// forces cuts, `AccelCost` takes at least one decision `ElementBudget`
/// does not (the splice), the spliced plan's `offchip_bits()` is strictly
/// lower, and outputs stay bitwise identical — the cost model changed the
/// schedule, not the mathematics.
#[test]
fn vgg16_small_accel_cost_beats_element_budget_on_traffic() {
    let net = bconv_models::small::vgg16_small(32);
    let input = uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut seeded_rng(2018));
    let budget = 1500usize; // cuts after conv1-1 (16x16 blocks, 4 channels)
    let element = Session::builder()
        .network(net.clone())
        .seed(2018)
        .threads(1)
        .on_chip_budget(budget)
        .build()
        .expect("element session");
    let accel = Session::builder()
        .network(net.clone())
        .seed(2018)
        .threads(1)
        .cost_model(accel_twin(budget, 32))
        .build()
        .expect("accel session");

    let er = element.plan().report();
    let ar = accel.plan().report();
    assert!(er.splices.is_empty() && !er.cost_cuts.is_empty(), "budget must cut, never splice");
    assert!(!ar.splices.is_empty(), "accel model must splice:\n{}", accel.describe());

    let e = element.run(&input).expect("element run");
    let a = accel.run(&input).expect("accel run");
    assert_eq!(a.output.data(), e.output.data(), "cost models must not change numerics");
    assert!(
        a.stats.offchip_bits() < e.stats.offchip_bits(),
        "splice must strictly lower off-chip traffic ({} vs {})",
        a.stats.offchip_bits(),
        e.stats.offchip_bits()
    );

    // And the quantized deployment path splices under the same rules
    // (FusedPipeline's single-precision constraint is satisfied — every
    // group carries the spec's activation bitwidth).
    let backend = Backend::Quantized { weight_bits: 8, act_bits: 8 };
    let qe = Session::builder()
        .network(net.clone())
        .seed(2018)
        .threads(1)
        .backend(backend)
        .on_chip_budget(budget)
        .build()
        .expect("quant element session");
    let qa = Session::builder()
        .network(net)
        .seed(2018)
        .threads(1)
        .backend(backend)
        .cost_model(accel_twin(budget, 8))
        .build()
        .expect("quant accel session");
    assert!(!qa.plan().report().splices.is_empty(), "{}", qa.describe());
    let eq = qe.run(&input).expect("quant element run");
    let aq = qa.run(&input).expect("quant accel run");
    assert_eq!(aq.output.data(), eq.output.data());
    assert!(aq.stats.offchip_bits() < eq.stats.offchip_bits());
    assert_eq!(aq.stats.bits_per_elem, 8);
}

/// Conflicting budget + cost model requests are rejected at build time.
#[test]
fn cost_model_and_budget_are_mutually_exclusive() {
    let r = Session::builder()
        .network(bconv_models::small::vgg16_small(32))
        .on_chip_budget(1000)
        .cost_model(accel_twin(1000, 32))
        .build();
    assert!(r.is_err());
}
