//! Integration tests of the hardware-side claims, spanning the accel and
//! models crates.

use bconv_accel::baseline::{run_baseline, TileConfig};
use bconv_accel::dse::{explore_vgg16, feasible};
use bconv_accel::fusion::{table6_configs, vgg16_shapes};
use bconv_accel::platform::{ultra96, zc706, EnergyModel};
use bconv_accel::vdsr_accel::{evaluate_baseline, evaluate_blockconv, VdsrConfig};
use bconv_models::analysis::total_feature_map_mbits;
use bconv_models::vgg::vgg16;

#[test]
fn accel_shapes_agree_with_model_descriptors() {
    // The accel crate's hard-coded VGG-16 shapes must match the models
    // crate's traced architecture.
    let shapes = vgg16_shapes();
    let info = vgg16(224).trace().unwrap();
    let convs: Vec<_> = info.iter().filter(|l| l.is_conv).collect();
    assert_eq!(shapes.len(), convs.len());
    for (s, l) in shapes.iter().zip(&convs) {
        assert_eq!(s.m, l.out_shape.c, "{}", l.name);
        assert_eq!(s.n, l.in_shape.c, "{}", l.name);
        assert_eq!(s.r, l.out_shape.h, "{}", l.name);
    }
    let accel_ops: u64 = shapes.iter().map(|s| s.ops()).sum();
    let model_ops: u64 = convs.iter().map(|l| 2 * l.macs).sum();
    assert_eq!(accel_ops, model_ops);
}

#[test]
fn fused_designs_beat_baseline_end_to_end() {
    // The paper's headline hardware claim (Figure 13): every fused design
    // outperforms the off-chip baseline at matched precision/PE count.
    let shapes = vgg16_shapes();
    let platform = zc706();
    let base16 = run_baseline(
        &shapes,
        &TileConfig { tr: 14, tc: 14, tm: 64, tn: 64, npe: 2 },
        &platform,
        16,
    );
    let base8 =
        run_baseline(&shapes, &TileConfig { tr: 14, tc: 14, tm: 64, tn: 64, npe: 4 }, &platform, 8);
    for design in table6_configs() {
        let eval = design.evaluate(&shapes, &platform);
        let base = if design.bits == 16 { &base16 } else { &base8 };
        assert!(
            eval.gops(&platform) >= base.gops(&platform),
            "design {} ({:.1}) should beat baseline ({:.1})",
            design.name,
            eval.gops(&platform),
            base.gops(&platform)
        );
    }
}

#[test]
fn fused_traffic_is_orders_of_magnitude_below_baseline() {
    let shapes = vgg16_shapes();
    let platform = zc706();
    let base = run_baseline(
        &shapes,
        &TileConfig { tr: 14, tc: 14, tm: 64, tn: 64, npe: 2 },
        &platform,
        16,
    );
    let fused = table6_configs()[0].evaluate(&shapes, &platform);
    assert!(base.feature_traffic_bits > 100 * fused.feature_traffic_bits);
    // Baseline traffic exceeds twice the total feature-map volume
    // (write + read of intermediates, Figure 1's motivation).
    let total_mbits = total_feature_map_mbits(&vgg16(224), 16).unwrap();
    assert!(base.feature_traffic_bits as f64 / 1e6 > total_mbits);
}

#[test]
fn vdsr_accelerator_reproduces_table9_shape() {
    let cfg = VdsrConfig::paper();
    let platform = ultra96();
    let base = evaluate_baseline(&cfg, &platform);
    let bconv = evaluate_blockconv(&cfg, &platform);
    // >99.9% transfer reduction; BRAM drops; identical compute and DSP.
    assert!(bconv.transfer_bits * 1000 < base.transfer_bits);
    assert!(bconv.bram18 < base.bram18);
    assert_eq!(bconv.dsp, base.dsp);
    assert_eq!(bconv.compute_cycles, base.compute_cycles);
    // Energy argument of §II-A.
    let e = EnergyModel::default();
    assert!(base.dram_energy_mj(&e) > 100.0 * bconv.dram_energy_mj(&e));
}

#[test]
fn dse_contains_the_named_table6_points() {
    // Every Table VI configuration appears in (or is dominated within) the
    // explored space: same BRAM and latency ranges.
    let shapes = vgg16_shapes();
    let platform = zc706();
    for (bits, npe) in [(16usize, 2usize), (8, 4)] {
        let points = explore_vgg16(&shapes, &platform, bits, npe);
        let feas = feasible(&points, &platform);
        for d in table6_configs().iter().filter(|d| d.bits == bits) {
            let e = d.evaluate(&shapes, &platform);
            assert!(
                feas.iter().any(|p| {
                    p.eval.bram18 <= e.bram18 && p.eval.real_cycles() <= e.real_cycles()
                }),
                "design {} not matched in the {bits}-bit space",
                d.name
            );
        }
    }
}
