//! Plan-cache and autotuner contract tests.
//!
//! The contract under test (ISSUE 10):
//!
//! * a plan-cache hit produces a session whose execution is **bitwise
//!   identical** to a freshly planned one, on every backend;
//! * a cache hit skips planning entirely — the planner-invocation
//!   counter stays flat;
//! * corrupted or stale cache files are rejected with a typed error and
//!   fall back to fresh planning, never a panic;
//! * the tuner's winner never models more off-chip traffic than the
//!   default configuration, and tuned builds cache their winner per host;
//! * `Session::fork` and `Session::into_router` share the already-built
//!   plan (`Arc::ptr_eq`) rather than re-planning.
//!
//! `bconv_graph::planner_invocations` is process-global, so every test in
//! this binary serialises on one mutex: counter assertions must not race
//! with other tests' session builds.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use bconv_core::BlockingPattern;
use bconv_graph::cache::{PlanCache, PlanCacheError, PlanKey};
use bconv_graph::cost::ElementBudget;
use bconv_graph::tune::{tune, TuneOptions};
use bconv_graph::{
    planner_invocations, Backend, KernelPolicy, PlanProvenance, PlanSpec, ServeConfig, Session,
};
use bconv_models::builder::{conv, maxpool, NetBuilder};
use bconv_models::small::{vdsr_small, vgg16_small};
use bconv_models::{ActShape, Network};
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::pad::PadMode;
use bconv_tensor::Tensor;
use proptest::prelude::*;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty cache directory unique to this test run.
fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bconv-plan-cache-{}-{tag}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn input_for(net: &Network, seed: u64) -> Tensor {
    let s = net.input;
    uniform_tensor([1, s.c, s.h, s.w], -1.0, 1.0, &mut seeded_rng(seed))
}

const BACKENDS: [Backend; 3] =
    [Backend::Reference, Backend::Blocked, Backend::Quantized { weight_bits: 8, act_bits: 8 }];

#[test]
fn cache_round_trip_is_bitwise_identical_on_every_backend() {
    let _g = serial();
    for (name, net) in [("vgg16_small", vgg16_small(32)), ("vdsr_small", vdsr_small(24, 4, 8))] {
        let input = input_for(&net, 0xCAFE);
        for backend in BACKENDS {
            let dir = temp_cache_dir("roundtrip");
            let fresh = Session::builder()
                .network(net.clone())
                .backend(backend)
                .plan_cache(&dir)
                .build()
                .unwrap();
            assert_eq!(
                fresh.plan().report().provenance,
                PlanProvenance::Fresh,
                "{name}/{backend:?}: first build must plan fresh"
            );
            let before = planner_invocations();
            let cached = Session::builder()
                .network(net.clone())
                .backend(backend)
                .plan_cache(&dir)
                .build()
                .unwrap();
            assert_eq!(
                planner_invocations(),
                before,
                "{name}/{backend:?}: cache hit must skip the planner entirely"
            );
            assert!(
                matches!(cached.plan().report().provenance, PlanProvenance::CacheLoaded { .. }),
                "{name}/{backend:?}: got {:?}",
                cached.plan().report().provenance
            );
            let a = fresh.run(&input).unwrap();
            let b = cached.run(&input).unwrap();
            assert_eq!(
                a.output.data(),
                b.output.data(),
                "{name}/{backend:?}: cache-loaded execution must be bitwise identical"
            );
            assert_eq!(a.stats.offchip_elems, b.stats.offchip_elems, "{name}/{backend:?}");
            assert_eq!(
                fresh.plan().fusion_groups(),
                cached.plan().fusion_groups(),
                "{name}/{backend:?}: plan structure must survive the round trip"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn corrupted_cache_files_fall_back_to_fresh_planning() {
    let _g = serial();
    let dir = temp_cache_dir("corrupt");
    let net = vgg16_small(32);
    let first = Session::builder().network(net.clone()).plan_cache(&dir).build().unwrap();

    // The stored file sits exactly where the key says it does.
    let cache = PlanCache::new(dir.clone());
    let key = PlanKey::for_build(
        first.graph(),
        2018,
        BlockingPattern::hierarchical(2),
        None,
        Backend::Blocked,
        &ElementBudget::unbounded(),
        KernelPolicy::Auto,
        PadMode::Zero,
    );
    let path = cache.path_for(&key);
    assert!(path.is_file(), "expected the first build to store {}", path.display());

    // Corrupt it: load reports a typed parse error, never a panic.
    std::fs::write(&path, "{ this is not json").unwrap();
    let err = cache.load(&key, first.graph(), PadMode::Zero, KernelPolicy::Auto, None).unwrap_err();
    assert!(matches!(err, PlanCacheError::Parse(_)), "got {err}");

    // And the builder silently re-plans fresh (and re-stores).
    let before = planner_invocations();
    let rebuilt = Session::builder().network(net.clone()).plan_cache(&dir).build().unwrap();
    assert_eq!(planner_invocations(), before + 1, "corrupt file must force a fresh plan");
    assert_eq!(rebuilt.plan().report().provenance, PlanProvenance::Fresh);

    // The re-store healed the cache.
    let healed = Session::builder().network(net).plan_cache(&dir).build().unwrap();
    assert!(matches!(healed.plan().report().provenance, PlanProvenance::CacheLoaded { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_keys_are_rejected_with_a_typed_mismatch() {
    let _g = serial();
    let dir = temp_cache_dir("stale");
    let net = vgg16_small(32);
    let first = Session::builder().network(net.clone()).plan_cache(&dir).build().unwrap();
    let cache = PlanCache::new(dir.clone());
    let key = |seed: u64, graph: &bconv_graph::Graph| {
        PlanKey::for_build(
            graph,
            seed,
            BlockingPattern::hierarchical(2),
            None,
            Backend::Blocked,
            &ElementBudget::unbounded(),
            KernelPolicy::Auto,
            PadMode::Zero,
        )
    };
    let stored = cache.path_for(&key(2018, first.graph()));

    // A session with a different seed hashes to a different key: drop the
    // seed-2018 plan file onto the seed-2019 key's path and the stored
    // key string betrays it.
    let other = Session::builder().network(net).seed(2019).build().unwrap();
    let stale_key = key(2019, other.graph());
    std::fs::copy(&stored, cache.path_for(&stale_key)).unwrap();
    let err =
        cache.load(&stale_key, other.graph(), PadMode::Zero, KernelPolicy::Auto, None).unwrap_err();
    assert!(matches!(err, PlanCacheError::KeyMismatch { .. }), "got {err}");

    // A missing file is a typed IO error, not a panic.
    let miss = key(2020, first.graph());
    let err =
        cache.load(&miss, first.graph(), PadMode::Zero, KernelPolicy::Auto, None).unwrap_err();
    assert!(matches!(err, PlanCacheError::Io(_)), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tune_winner_never_models_more_offchip_than_the_default() {
    let _g = serial();
    let report = tune(&vgg16_small(32), &TuneOptions::default()).unwrap();
    assert!(report.points.len() > 1, "the DSE must explore beyond the default");
    assert!(!report.pareto.is_empty());
    for &i in &report.pareto {
        assert!(i < report.points.len());
    }
    assert!(
        report.winner_point().offchip_bits <= report.default_point().offchip_bits,
        "winner {} > default {}",
        report.winner_point().offchip_bits,
        report.default_point().offchip_bits
    );
    // The report serialises (CI uploads it as an artifact).
    let json = report.to_json();
    assert!(json.contains("\"pareto\"") && json.contains("\"points\""), "{json}");
}

#[test]
fn tuned_builds_cache_their_winner_and_stay_bitwise_identical() {
    let _g = serial();
    let dir = temp_cache_dir("tuned");
    let net = vgg16_small(32);
    let input = input_for(&net, 0xBEEF);

    let first = Session::builder().network(net.clone()).tuned().plan_cache(&dir).build().unwrap();
    assert!(
        matches!(first.plan().report().provenance, PlanProvenance::TuneSelected { .. }),
        "got {:?}",
        first.plan().report().provenance
    );

    // Second tuned build: winner loaded from the per-host cache, plan
    // loaded from the plan cache — nothing plans, nothing re-tunes.
    let before = planner_invocations();
    let second = Session::builder().network(net.clone()).tuned().plan_cache(&dir).build().unwrap();
    assert_eq!(planner_invocations(), before, "cached winner + cached plan must skip planning");
    assert!(matches!(second.plan().report().provenance, PlanProvenance::CacheLoaded { .. }));
    let a = first.run(&input).unwrap();
    let b = second.run(&input).unwrap();
    assert_eq!(a.output.data(), b.output.data(), "tuned execution must be reproducible bitwise");

    // A fresh session pinned to the winner's exact knobs executes
    // bitwise identically to the tune-selected one.
    let topts = TuneOptions::default();
    let report = tune(&net, &topts).unwrap();
    let w = report.winner;
    let explicit = Session::builder()
        .network(net)
        .pattern(w.pattern)
        .cost_model(w.cost_model(topts.platform.clone(), topts.npe))
        .kernel(w.kernel)
        .threads(w.threads)
        .build()
        .unwrap();
    let c = explicit.run(&input).unwrap();
    assert_eq!(a.output.data(), c.output.data(), "tune-selected == fresh with the same knobs");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fork_and_router_share_the_compiled_plan() {
    let _g = serial();
    let session = Session::builder().network(vgg16_small(32)).build().unwrap();
    let fork = session.fork();
    assert!(
        Arc::ptr_eq(session.plan_handle(), fork.plan_handle()),
        "fork must share the ExecPlan allocation, not re-plan"
    );
    let before = planner_invocations();
    let router = fork.into_router(3, ServeConfig::default()).unwrap();
    assert_eq!(planner_invocations(), before, "router replicas must reuse the built plan");
    let engines = router.replicas();
    assert_eq!(engines.len(), 3);
    assert!(engines.iter().all(|e| engines[0].shares_model_with(e)));
    router.shutdown();
}

#[test]
fn plan_spec_path_matches_the_legacy_knobs() {
    let _g = serial();
    let net = vdsr_small(24, 4, 8);
    let input = input_for(&net, 0xF00D);
    let via_spec = Session::builder()
        .network(net.clone())
        .planner(PlanSpec::new().pattern(BlockingPattern::fixed(8)).on_chip_budget(1500))
        .build()
        .unwrap();
    let via_knobs = Session::builder()
        .network(net.clone())
        .pattern(BlockingPattern::fixed(8))
        .on_chip_budget(1500)
        .build()
        .unwrap();
    assert_eq!(via_spec.plan().fusion_groups(), via_knobs.plan().fusion_groups());
    let a = via_spec.run(&input).unwrap();
    let b = via_knobs.run(&input).unwrap();
    assert_eq!(a.output.data(), b.output.data(), "spec and knob paths must compile identically");

    // The old mutual-exclusion diagnostic survives the redesign, through
    // the spec path too.
    let err = Session::builder()
        .network(net)
        .planner(PlanSpec::new().on_chip_budget(10).cost_model(ElementBudget::unbounded()))
        .build()
        .unwrap_err();
    assert!(format!("{err}").contains("mutually exclusive"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Serialize → deserialize → execute round-trips bitwise on random
    /// small nets, across all three backends.
    #[test]
    fn random_nets_round_trip_bitwise(
        c1 in 1usize..4,
        c2 in 1usize..4,
        seed in 0u64..200,
        backend_idx in 0usize..3,
    ) {
        let _g = serial();
        let backend = BACKENDS[backend_idx];
        let mut b = NetBuilder::new("prop-cache", ActShape { c: 2, h: 16, w: 16 });
        b.push("conv1", conv(3, 1, 1, 2, c1));
        b.push("conv2", conv(3, 1, 1, c1, c2));
        b.push("pool", maxpool(2, 2, 0));
        let net = b.build();
        let input = input_for(&net, seed ^ 0x51AB);
        let dir = temp_cache_dir("prop");

        let fresh = Session::builder()
            .network(net.clone())
            .seed(seed)
            .backend(backend)
            .plan_cache(&dir)
            .build()
            .unwrap();
        let cached = Session::builder()
            .network(net)
            .seed(seed)
            .backend(backend)
            .plan_cache(&dir)
            .build()
            .unwrap();
        prop_assert!(matches!(
            cached.plan().report().provenance,
            PlanProvenance::CacheLoaded { .. }
        ));
        let a = fresh.run(&input).unwrap();
        let b = cached.run(&input).unwrap();
        prop_assert_eq!(a.output.data(), b.output.data());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
