//! The pluggable-kernel / thread-parallel execution contract:
//!
//! * `Session` outputs are **bitwise identical** at any worker-thread
//!   count and for either conv kernel — blocks are independent by
//!   construction (paper §II-C), so scheduling must never leak into the
//!   numerics, and `MemStats` accounting stays exact;
//! * `FusedChain` stages share the `Graph`'s `Arc<Conv2d>` weights
//!   (no deep clones — blocked-conv weights exist once per session);
//! * the thread count resolves builder-first with a validated
//!   `BCONV_THREADS` fallback.

use std::sync::Arc;

use bconv_core::BlockingPattern;
use bconv_graph::{KernelPolicy, NodeOp, Segment, Session, THREADS_ENV};
use bconv_models::small::{resnet18_small, vgg16_small};
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::Tensor;

fn vgg_session(kernel: KernelPolicy, threads: usize) -> Session {
    Session::builder()
        .network(vgg16_small(32))
        .pattern(BlockingPattern::hierarchical(2))
        .kernel(kernel)
        .threads(threads)
        .seed(2018)
        .build()
        .unwrap()
}

fn vgg_input(seed: u64) -> Tensor {
    uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut seeded_rng(seed))
}

#[test]
fn outputs_are_bitwise_identical_across_thread_counts() {
    let input = vgg_input(41);
    for kernel in [KernelPolicy::Direct, KernelPolicy::Im2colGemm, KernelPolicy::Auto] {
        let base = vgg_session(kernel, 1).run(&input).unwrap();
        for threads in [2usize, 8] {
            let report = vgg_session(kernel, threads).run(&input).unwrap();
            assert_eq!(
                base.output.data(),
                report.output.data(),
                "{} threads changed the output under {kernel:?}",
                threads
            );
            // MemStats model on-chip buffers and off-chip traffic of the
            // fused schedule; both are scheduling-invariant.
            assert_eq!(base.stats, report.stats, "stats drifted at {threads} threads");
            assert_eq!(base.segments, report.segments);
        }
    }
}

#[test]
fn kernel_choice_does_not_change_session_numerics() {
    // Both kernels accumulate in the same order, so even the whole-network
    // outputs match exactly; the documented contract is 1e-4 relative.
    let input = vgg_input(43);
    let direct = vgg_session(KernelPolicy::Direct, 2).run(&input).unwrap();
    let gemm = vgg_session(KernelPolicy::Im2colGemm, 2).run(&input).unwrap();
    let mag = direct.output.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
    let rel = direct.output.max_abs_diff(&gemm.output).unwrap() / mag;
    assert!(rel < 1e-4, "kernel choice perturbed session output: rel err {rel}");
}

#[test]
fn oversubscribed_threads_are_harmless() {
    // More workers than blocks: the dispatcher clamps to the block count.
    let input = vgg_input(47);
    let few_blocks = vgg_session(KernelPolicy::Auto, 64).run(&input).unwrap();
    let serial = vgg_session(KernelPolicy::Auto, 1).run(&input).unwrap();
    assert_eq!(few_blocks.output.data(), serial.output.data());
}

#[test]
fn fused_chains_share_graph_weights() {
    for net in [vgg16_small(32), resnet18_small(32)] {
        let session = Session::builder()
            .network(net)
            .pattern(BlockingPattern::hierarchical(2))
            .threads(1)
            .build()
            .unwrap();
        let nodes = session.graph().nodes();
        let mut fused_convs = 0usize;
        for seg in session.plan().segments() {
            let Segment::Fused { nodes: ids, chain, .. } = seg else {
                continue;
            };
            let node_arcs: Vec<&Arc<_>> = ids
                .iter()
                .filter_map(|&id| match &nodes[id].op {
                    NodeOp::Conv { conv, .. } => Some(conv),
                    _ => None,
                })
                .collect();
            let stage_arcs: Vec<&Arc<_>> = chain.convs().map(|b| b.conv_arc()).collect();
            assert_eq!(node_arcs.len(), stage_arcs.len());
            for (node_arc, stage_arc) in node_arcs.iter().zip(&stage_arcs) {
                assert!(
                    Arc::ptr_eq(node_arc, stage_arc),
                    "chain stage deep-cloned its weights instead of sharing the graph's Arc"
                );
                fused_convs += 1;
            }
        }
        assert!(fused_convs > 0, "expected fused conv stages to check");
    }
}

#[test]
fn zero_builder_threads_is_rejected() {
    let err = Session::builder().network(vgg16_small(32)).threads(0).build();
    assert!(err.is_err(), "threads(0) must not build");
}

#[test]
fn threads_env_fallback_is_validated() {
    // This is the only test that touches the process environment; every
    // other session in this binary sets .threads() explicitly, so the
    // builder never consults the variable concurrently.
    for garbage in ["0", "-3", "lots", ""] {
        std::env::set_var(THREADS_ENV, garbage);
        let res = Session::builder().network(vgg16_small(32)).build();
        assert!(res.is_err(), "{THREADS_ENV}={garbage:?} must be rejected");
        let msg = res.err().unwrap().to_string();
        assert!(msg.contains(THREADS_ENV), "error should name the variable: {msg}");
    }
    std::env::set_var(THREADS_ENV, "3");
    let session = Session::builder().network(vgg16_small(32)).build().unwrap();
    assert_eq!(session.threads(), 3);
    std::env::remove_var(THREADS_ENV);

    // Builder setting wins over the environment.
    std::env::set_var(THREADS_ENV, "7");
    let session = Session::builder().network(vgg16_small(32)).threads(2).build().unwrap();
    assert_eq!(session.threads(), 2);
    std::env::remove_var(THREADS_ENV);
}
