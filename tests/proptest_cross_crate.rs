//! Workspace-level property tests on cross-crate invariants.

use bconv_core::blocking::{BlockGrid, BlockingPattern};
use bconv_core::fusion::{ChainOp, FusedChain};
use bconv_quant::{fake_quant_dynamic, quantize, dequantize, QParams};
use bconv_tensor::conv::ConvGeom;
use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};
use bconv_tensor::pad::PadMode;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused execution equals layer-wise execution for arbitrary chains:
    /// fusion is a schedule change, never a numerical one.
    #[test]
    fn fusion_is_schedule_invariant(
        g in 1usize..3,
        c1 in 1usize..4,
        c2 in 1usize..4,
        seed in 0u64..500,
        mode_idx in 0usize..3,
    ) {
        let mut rng = seeded_rng(seed);
        let mode = PadMode::ALL[mode_idx];
        let grid = BlockGrid::from_pattern(16, 16, BlockingPattern::hierarchical(g)).unwrap();
        let chain = FusedChain::plan(
            vec![
                ChainOp::Conv(he_conv2d(2, c1, ConvGeom::same(3), 1, &mut rng).unwrap()),
                ChainOp::Relu,
                ChainOp::Conv(he_conv2d(c1, c2, ConvGeom::same(3), 1, &mut rng).unwrap()),
                ChainOp::MaxPool { k: 2 },
            ],
            grid,
            mode,
        )
        .unwrap();
        let input = uniform_tensor([1, 2, 16, 16], -1.0, 1.0, &mut rng);
        let (fused, fs) = chain.run_fused(&input).unwrap();
        let (layerwise, ls) = chain.run_layerwise(&input).unwrap();
        prop_assert!(fused.approx_eq(&layerwise, 1e-4).unwrap());
        prop_assert!(fs.offchip_elems <= ls.offchip_elems);
    }

    /// Quantize/dequantize round trips are bounded by half a step and
    /// idempotent (fake-quant of fake-quant is the identity).
    #[test]
    fn quantization_roundtrip_bounds(
        bits in 3u8..9,
        scale in 0.1f32..10.0,
        seed in 0u64..500,
    ) {
        let mut rng = seeded_rng(seed);
        let t = uniform_tensor([1, 2, 4, 4], -scale, scale, &mut rng);
        let params = QParams::from_abs_max(scale, bits);
        let q = quantize(&t, params);
        let back = dequantize(&q).unwrap();
        prop_assert!(t.max_abs_diff(&back).unwrap() <= params.step() / 2.0 + 1e-6);
        // Idempotence.
        let fq = fake_quant_dynamic(&t, bits);
        let fq2 = fake_quant_dynamic(&fq, bits);
        prop_assert!(fq.max_abs_diff(&fq2).unwrap() <= params.step() * 0.51 + 1e-6);
    }

    /// Grid downscaling commutes with block enumeration: downscaled blocks
    /// are the original blocks divided by the stride.
    #[test]
    fn grid_downscale_commutes(
        g in 1usize..5,
        s in prop::sample::select(vec![2usize, 4]),
    ) {
        let size = 32usize;
        prop_assume!(size % (g * s) == 0 && (size / g) % s == 0);
        let grid = BlockGrid::from_pattern(size, size, BlockingPattern::hierarchical(g)).unwrap();
        let down = grid.downscale(s).unwrap();
        prop_assert_eq!(down.num_blocks(), grid.num_blocks());
        for (a, b) in grid.blocks().zip(down.blocks()) {
            prop_assert_eq!(a.h0 / s, b.h0);
            prop_assert_eq!(a.bh / s, b.bh);
        }
    }
}
