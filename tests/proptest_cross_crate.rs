//! Workspace-level property tests on cross-crate invariants.

use bconv_core::blocking::{BlockGrid, BlockingPattern};
use bconv_core::fusion::{ChainOp, FusedChain};
use bconv_graph::{Graph, LowerOptions, Planner, PlannerOptions, Segment};
use bconv_models::builder::{conv, maxpool, NetBuilder};
use bconv_models::ActShape;
use bconv_quant::qconv::QConv2d;
use bconv_quant::{dequantize, fake_quant_dynamic, quantize, QParams};
use bconv_tensor::conv::ConvGeom;
use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};
use bconv_tensor::pad::PadMode;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused execution equals layer-wise execution for arbitrary
    /// planner-compiled chains: fusion is a schedule change, never a
    /// numerical one. Chains are produced by lowering a random descriptor
    /// through the Session compiler stages, not assembled by hand.
    #[test]
    fn fusion_is_schedule_invariant(
        g in 1usize..3,
        c1 in 1usize..4,
        c2 in 1usize..4,
        seed in 0u64..500,
        mode_idx in 0usize..3,
    ) {
        let mode = PadMode::ALL[mode_idx];
        let mut b = NetBuilder::new("prop", ActShape { c: 2, h: 16, w: 16 });
        b.push("conv1", conv(3, 1, 1, 2, c1));
        b.push("conv2", conv(3, 1, 1, c1, c2));
        b.push("pool", maxpool(2, 2, 0));
        let net = b.build();
        let graph = Graph::lower(
            &net,
            &LowerOptions { seed, relu_after_conv: true },
        ).unwrap();
        let plan = Planner::new(PlannerOptions {
            pattern: BlockingPattern::hierarchical(g),
            pad_mode: mode,
            ..PlannerOptions::default()
        }).plan(&graph).unwrap();

        // The whole conv/relu/pool body compiles into one fusion group
        // (16 is divisible by every g here, so pooling stays aligned).
        prop_assert_eq!(plan.fusion_groups(), 1);
        prop_assert!(matches!(plan.segments()[0], Segment::Fused { .. }));
        let Segment::Fused { chain, .. } = &plan.segments()[0] else {
            unreachable!()
        };

        let mut rng = seeded_rng(seed ^ 0xF00D);
        let input = uniform_tensor([1, 2, 16, 16], -1.0, 1.0, &mut rng);
        let (fused, fs) = chain.run_fused(&input).unwrap();
        let (layerwise, ls) = chain.run_layerwise(&input).unwrap();
        prop_assert!(fused.approx_eq(&layerwise, 1e-4).unwrap());
        prop_assert!(fs.offchip_elems <= ls.offchip_elems);
    }

    /// Quantize/dequantize round trips are bounded by half a step and
    /// idempotent (fake-quant of fake-quant is the identity).
    #[test]
    fn quantization_roundtrip_bounds(
        bits in 3u8..9,
        scale in 0.1f32..10.0,
        seed in 0u64..500,
    ) {
        let mut rng = seeded_rng(seed);
        let t = uniform_tensor([1, 2, 4, 4], -scale, scale, &mut rng);
        let params = QParams::from_abs_max(scale, bits);
        let q = quantize(&t, params);
        let back = dequantize(&q).unwrap();
        prop_assert!(t.max_abs_diff(&back).unwrap() <= params.step() / 2.0 + 1e-6);
        // Idempotence.
        let fq = fake_quant_dynamic(&t, bits);
        let fq2 = fake_quant_dynamic(&fq, bits);
        prop_assert!(fq.max_abs_diff(&fq2).unwrap() <= params.step() * 0.51 + 1e-6);
    }

    /// Blocked-quantized and dense-quantized execution agree **bitwise** on
    /// pixels whose 3x3 receptive field stays inside one block: block
    /// convolution only perturbs boundary pixels (paper §II-C), and the
    /// integer path quantizes identical pixel values to identical integers
    /// and accumulates them in the same order.
    #[test]
    fn blocked_quant_interior_matches_dense_quant_bitwise(
        g in prop::sample::select(vec![2usize, 4]),
        c_in in 1usize..3,
        c_out in 1usize..3,
        seed in 0u64..500,
    ) {
        let mut rng = seeded_rng(seed ^ 0x1B17);
        let cv = he_conv2d(c_in, c_out, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, c_in, 16, 16], -1.0, 1.0, &mut rng);
        let act = QParams::from_abs_max(1.0, 8);
        let qconv = QConv2d::from_conv(&cv, 8).unwrap();
        let dense = qconv.forward(&input, act, PadMode::Zero).unwrap();
        let grid = BlockGrid::from_pattern(16, 16, BlockingPattern::hierarchical(g)).unwrap();
        let chain = FusedChain::plan_quantized(
            vec![ChainOp::conv(cv)],
            grid.clone(),
            PadMode::Zero,
            8,
            &[act],
        )
        .unwrap();
        let (blocked, _) = chain.run_fused(&input).unwrap();
        prop_assert_eq!(blocked.shape(), dense.shape());
        for r in 0..grid.num_rows() {
            for c in 0..grid.num_cols() {
                let b = grid.block(r, c);
                for ch in 0..c_out {
                    for h in b.h0 + 1..b.h0 + b.bh - 1 {
                        for w in b.w0 + 1..b.w0 + b.bw - 1 {
                            prop_assert_eq!(
                                dense.at(0, ch, h, w).to_bits(),
                                blocked.at(0, ch, h, w).to_bits(),
                                "interior pixel ({ch},{h},{w}) differs in block ({r},{c})"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Grid downscaling commutes with block enumeration: downscaled blocks
    /// are the original blocks divided by the stride.
    #[test]
    fn grid_downscale_commutes(
        g in 1usize..5,
        s in prop::sample::select(vec![2usize, 4]),
    ) {
        let size = 32usize;
        prop_assume!(size.is_multiple_of(g * s) && (size / g).is_multiple_of(s));
        let grid = BlockGrid::from_pattern(size, size, BlockingPattern::hierarchical(g)).unwrap();
        let down = grid.downscale(s).unwrap();
        prop_assert_eq!(down.num_blocks(), grid.num_blocks());
        for (a, b) in grid.blocks().zip(down.blocks()) {
            prop_assert_eq!(a.h0 / s, b.h0);
            prop_assert_eq!(a.bh / s, b.bh);
        }
    }
}
