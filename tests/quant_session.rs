//! End-to-end tests of the quantized executor backend — the paper's
//! deployment path (§III-C, Figure 7) driven entirely through [`Session`].
//!
//! The contract:
//!
//! * `Backend::Quantized` compiles and runs the paper's two deployment
//!   configurations (VGG-16-small at 8/8, VDSR-small at 8-bit activations ×
//!   4-bit weights) end to end;
//! * blocked-quantized execution stays within the dense-quantized error
//!   envelope relative to the float run of the same schedule — quantization
//!   error does not compound with blocking;
//! * the quantized backend honors the session's block-padding mode (the
//!   original `QConv2d` bug hardcoded zero);
//! * off-chip traffic is element-identical to the float blocked schedule
//!   but shrinks in bits with the activation width.

use bconv_core::plan::NetworkPlan;
use bconv_core::BlockingPattern;
use bconv_graph::{Backend, Session};
use bconv_models::layer::LayerKind;
use bconv_models::small::{vdsr_small, vgg16_small};
use bconv_models::Network;
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::{PadMode, Tensor};

fn input_for(net: &Network, seed: u64) -> Tensor {
    let s = net.input;
    uniform_tensor([1, s.c, s.h, s.w], -1.0, 1.0, &mut seeded_rng(seed))
}

fn conv_count(net: &Network) -> usize {
    net.layers.iter().filter(|l| matches!(l.kind, LayerKind::Conv { .. })).count()
}

fn rel_err(a: &Tensor, b: &Tensor) -> f32 {
    let mag = b.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
    a.max_abs_diff(b).unwrap() / mag
}

fn session(net: &Network, backend: Backend, pad: PadMode, blocked: bool) -> Session {
    let mut b = Session::builder().network(net.clone()).seed(2018).pad(pad).backend(backend);
    if !blocked {
        b = b.plan(NetworkPlan::unblocked(conv_count(net)));
    }
    b.build().unwrap()
}

#[test]
fn vgg_quantized_session_runs_end_to_end() {
    // The acceptance configuration: VGG-16-small, 8-bit weights and
    // activations, blocked-fused schedule.
    let net = vgg16_small(32);
    let input = input_for(&net, 1);
    let q = session(&net, Backend::Quantized { weight_bits: 8, act_bits: 8 }, PadMode::Zero, true);
    assert!(q.plan().fusion_groups() > 0, "quantized plan must keep fusion groups");
    assert!((q.plan().blocking_ratio() - 1.0).abs() < 1e-9);
    let report = q.run(&input).unwrap();
    assert_eq!(report.output.shape().dims(), [1, 10, 1, 1]);
    assert_eq!(report.stats.bits_per_elem, 8);
    // Close to the float run of the same (blocked) schedule.
    let f = session(&net, Backend::Blocked, PadMode::Zero, true);
    let err = rel_err(&report.output, &f.run(&input).unwrap().output);
    assert!(err < 0.3, "8/8 quantized VGG drifted from float blocked: {err}");
}

#[test]
fn vdsr_8x4_deployment_variant_runs() {
    // The paper's Ultra96 VDSR configuration: 8-bit activations, 4-bit
    // weights (§III-C1).
    let net = vdsr_small(24, 6, 8);
    let input = input_for(&net, 2);
    let q = session(&net, Backend::Quantized { weight_bits: 4, act_bits: 8 }, PadMode::Zero, true);
    let report = q.run(&input).unwrap();
    assert_eq!(report.output.shape().dims(), [1, 1, 24, 24]);
    assert_eq!(report.stats.bits_per_elem, 8);
    let f = session(&net, Backend::Blocked, PadMode::Zero, true);
    let err = rel_err(&report.output, &f.run(&input).unwrap().output);
    assert!(err < 0.4, "8x4 quantized VDSR drifted from float blocked: {err}");
}

#[test]
fn blocked_quant_stays_within_dense_quant_envelope() {
    // Quantization error must not compound with blocking: the blocked
    // quantized run tracks its float schedule about as well as the dense
    // quantized run tracks dense float.
    for (name, net) in [("vgg", vgg16_small(32)), ("vdsr", vdsr_small(24, 6, 8))] {
        let input = input_for(&net, 3);
        let backend = Backend::Quantized { weight_bits: 8, act_bits: 8 };
        let dense_env = rel_err(
            &session(&net, backend, PadMode::Zero, false).run(&input).unwrap().output,
            &session(&net, Backend::Blocked, PadMode::Zero, false).run(&input).unwrap().output,
        );
        let blocked_env = rel_err(
            &session(&net, backend, PadMode::Zero, true).run(&input).unwrap().output,
            &session(&net, Backend::Blocked, PadMode::Zero, true).run(&input).unwrap().output,
        );
        assert!(
            blocked_env <= 2.0 * dense_env + 0.02,
            "{name}: blocked-quant error {blocked_env} escapes the dense-quant envelope \
             {dense_env}"
        );
    }
}

#[test]
fn quantized_backend_honors_block_pad_mode() {
    // Regression for the hardcoded-zero padding bug, now at session level:
    // under replicate block padding the quantized run must track the
    // replicate float run, and differ from a zero-padded quantized run.
    let net = vdsr_small(24, 4, 8);
    let input = input_for(&net, 4);
    let backend = Backend::Quantized { weight_bits: 8, act_bits: 8 };
    let f_rep =
        session(&net, Backend::Blocked, PadMode::Replicate, true).run(&input).unwrap().output;
    let q_rep = session(&net, backend, PadMode::Replicate, true).run(&input).unwrap().output;
    let q_zero = session(&net, backend, PadMode::Zero, true).run(&input).unwrap().output;
    let err_rep = rel_err(&q_rep, &f_rep);
    let err_zero = rel_err(&q_zero, &f_rep);
    assert!(err_rep < 0.1, "replicate quant session diverges from replicate float: {err_rep}");
    assert!(
        err_zero > 2.0 * err_rep,
        "zero-padded quant should visibly differ from the replicate float run \
         (rep {err_rep}, zero {err_zero})"
    );
}

#[test]
fn quantized_backend_honors_reflect_pad_mode() {
    // Reflect was the uncovered third of PadMode::ALL at session level:
    // under reflect block padding the quantized run must track the
    // reflect float run and visibly differ from a zero-padded quantized
    // run (reflection repeats interior pixels, zero injects black).
    let net = vdsr_small(24, 4, 8);
    let input = input_for(&net, 6);
    let backend = Backend::Quantized { weight_bits: 8, act_bits: 8 };
    let f_reflect =
        session(&net, Backend::Blocked, PadMode::Reflect, true).run(&input).unwrap().output;
    let q_reflect = session(&net, backend, PadMode::Reflect, true).run(&input).unwrap().output;
    let q_zero = session(&net, backend, PadMode::Zero, true).run(&input).unwrap().output;
    let err_reflect = rel_err(&q_reflect, &f_reflect);
    let err_zero = rel_err(&q_zero, &f_reflect);
    assert!(err_reflect < 0.1, "reflect quant session diverges from reflect float: {err_reflect}");
    assert!(
        err_zero > 2.0 * err_reflect,
        "zero-padded quant should visibly differ from the reflect float run \
         (reflect {err_reflect}, zero {err_zero})"
    );
}

#[test]
fn reflect_blocked_quant_stays_within_dense_quant_envelope() {
    // The error-envelope contract of blocked_quant_stays_within_dense_
    // quant_envelope, under reflect block padding: quantization error must
    // not compound with blocking for any supported pad mode. The dense
    // yardstick is pad-mode-free (an unblocked plan applies no block
    // padding), so the same envelope bounds every mode's blocked run.
    // VDSR variants only: reflection needs pad < block dim, which VGG's
    // deepest 1x1 blocks cannot satisfy (the same reason Figure 6's pad
    // study runs on VDSR).
    for (name, net) in [("vdsr6x8", vdsr_small(24, 6, 8)), ("vdsr4x6", vdsr_small(24, 4, 6))] {
        let input = input_for(&net, 7);
        let backend = Backend::Quantized { weight_bits: 8, act_bits: 8 };
        let dense_env = rel_err(
            &session(&net, backend, PadMode::Zero, false).run(&input).unwrap().output,
            &session(&net, Backend::Blocked, PadMode::Zero, false).run(&input).unwrap().output,
        );
        let blocked_reflect_env = rel_err(
            &session(&net, backend, PadMode::Reflect, true).run(&input).unwrap().output,
            &session(&net, Backend::Blocked, PadMode::Reflect, true).run(&input).unwrap().output,
        );
        assert!(
            blocked_reflect_env <= 2.0 * dense_env + 0.02,
            "{name}: reflect blocked-quant error {blocked_reflect_env} escapes the dense-quant \
             envelope {dense_env}"
        );
    }
}

#[test]
fn offchip_bits_shrink_with_act_width() {
    // Same schedule, same element traffic, narrower words: the paper's
    // Figure 7 memory claim, now measured on the executable plan.
    let net = vgg16_small(32);
    let input = input_for(&net, 5);
    let float_stats =
        session(&net, Backend::Blocked, PadMode::Zero, true).run(&input).unwrap().stats;
    let stats_at = |act_bits: u8| {
        session(&net, Backend::Quantized { weight_bits: 8, act_bits }, PadMode::Zero, true)
            .run(&input)
            .unwrap()
            .stats
    };
    let (a16, a8) = (stats_at(16), stats_at(8));
    assert_eq!(float_stats.offchip_elems, a16.offchip_elems);
    assert_eq!(a16.offchip_elems, a8.offchip_elems);
    assert_eq!(float_stats.bits_per_elem, 32);
    assert!(
        float_stats.offchip_bits() > a16.offchip_bits() && a16.offchip_bits() > a8.offchip_bits(),
        "off-chip bits must shrink with activation width: f32 {} a16 {} a8 {}",
        float_stats.offchip_bits(),
        a16.offchip_bits(),
        a8.offchip_bits()
    );
    assert_eq!(a8.offchip_bits() * 4, float_stats.offchip_bits());
}

#[test]
fn quantized_segments_mirror_the_float_plan() {
    // The quantized planner reuses the float fusion-group walk, so the
    // segment structure (and fused/whole-map split) is identical.
    let net = vgg16_small(32);
    let f = session(&net, Backend::Blocked, PadMode::Zero, true);
    let q = session(&net, Backend::Quantized { weight_bits: 8, act_bits: 8 }, PadMode::Zero, true);
    assert_eq!(f.plan().segments().len(), q.plan().segments().len());
    assert_eq!(f.plan().fusion_groups(), q.plan().fusion_groups());
    assert_eq!(f.plan().blocked_convs(), q.plan().blocked_convs());
    // Different blocking patterns compile to different quantized plans too.
    let q4 = Session::builder()
        .network(net)
        .pattern(BlockingPattern::fixed(8))
        .backend(Backend::Quantized { weight_bits: 8, act_bits: 8 })
        .build()
        .unwrap();
    assert!(q4.plan().fusion_groups() > 0);
    assert!(q4.run(&input_for(&vgg16_small(32), 6)).is_ok());
}
