//! Serving determinism: the [`ServeEngine`] contract that scheduling is
//! **bitwise invisible**. For random small networks and request mixes,
//! batched (`run_batch`) and ticketed (`submit`/`wait`) serving produce
//! per-request outputs and [`MemStats`] identical to sequential
//! `Session::run` calls — across the Reference / Blocked / Quantized
//! backends, 1/2/8 engine workers, and any batch-coalescing size.
//!
//! This is the serving analogue of the kernel/thread contract in
//! `kernels_threads.rs`: worker count, queue timing, and batch
//! coalescing are schedule choices and must never leak into numerics or
//! memory accounting.

use bconv_graph::{Backend, ServeConfig, Session, SessionBuilder, TicketId};
use bconv_models::builder::{conv, maxpool, NetBuilder};
use bconv_models::{ActShape, Network};
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::{PadMode, Tensor};
use proptest::prelude::*;

/// A random-but-valid small network: two or three stride-1 convs on a
/// 16x16 map (so every hierarchical grid divides), optional pooling tail.
fn random_net(c1: usize, c2: usize, with_pool: bool) -> Network {
    let mut b = NetBuilder::new("serve_prop", ActShape { c: 2, h: 16, w: 16 });
    b.push("conv1", conv(3, 1, 1, 2, c1));
    b.push("conv2", conv(3, 1, 1, c1, c2));
    if with_pool {
        b.push("pool", maxpool(2, 2, 0));
        b.push("conv3", conv(3, 1, 1, c2, 2));
    }
    b.build()
}

fn session(net: &Network, backend: Backend, pad: PadMode, seed: u64, threads: usize) -> Session {
    let b: SessionBuilder = Session::builder()
        .network(net.clone())
        .backend(backend)
        .pad(pad)
        .seed(seed)
        .threads(threads)
        .relu_after_conv(true);
    b.build().expect("property session builds")
}

/// Request mix with non-uniform batch sizes, so coalescing chunks land on
/// uneven boundaries.
fn request_mix(seed: u64) -> Vec<Tensor> {
    [1usize, 2, 1, 3, 1]
        .iter()
        .enumerate()
        .map(|(i, &n)| uniform_tensor([n, 2, 16, 16], -1.0, 1.0, &mut seeded_rng(seed + i as u64)))
        .collect()
}

const BACKENDS: [Backend; 3] =
    [Backend::Reference, Backend::Blocked, Backend::Quantized { weight_bits: 8, act_bits: 8 }];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// `run_batch` and `submit`/`wait` are bitwise-identical to the
    /// sequential oracle, per request, for every backend x worker count.
    #[test]
    fn serving_matches_sequential_runs_bitwise(
        c1 in 1usize..4,
        c2 in 1usize..4,
        pool_idx in 0usize..2,
        mode_idx in 0usize..3,
        max_batch in 1usize..5,
        seed in 0u64..1000,
    ) {
        let net = random_net(c1, c2, pool_idx == 1);
        let mode = PadMode::ALL[mode_idx];
        let inputs = request_mix(seed ^ 0xBA7C);
        for backend in BACKENDS {
            let oracle = session(&net, backend, mode, seed, 1);
            let want: Vec<_> = inputs
                .iter()
                .map(|t| oracle.run(t).expect("oracle run"))
                .collect();
            for workers in [1usize, 2, 8] {
                let engine = session(&net, backend, mode, seed, 1)
                    .into_engine(ServeConfig { workers, queue_depth: 4, max_batch, ..ServeConfig::default() })
                    .expect("engine builds");

                // Batched entry point.
                let got = engine.run_batch(inputs.clone()).expect("run_batch");
                prop_assert_eq!(got.len(), want.len());
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    prop_assert_eq!(
                        g.output.data(), w.output.data(),
                        "{:?} workers={} req={}: run_batch output diverged", backend, workers, i
                    );
                    prop_assert_eq!(
                        g.stats, w.stats,
                        "{:?} workers={} req={}: per-request stats diverged", backend, workers, i
                    );
                    prop_assert_eq!(g.segments, w.segments);
                }

                // Ticketed entry point, redeemed out of submission order.
                let tickets: Vec<TicketId> = inputs
                    .iter()
                    .map(|t| engine.submit(t.clone()).expect("submit"))
                    .collect();
                for (i, &t) in tickets.iter().enumerate().rev() {
                    let g = engine.wait(t).expect("wait");
                    prop_assert_eq!(
                        g.output.data(), want[i].output.data(),
                        "{:?} workers={} req={}: ticketed output diverged", backend, workers, i
                    );
                    prop_assert_eq!(g.stats, want[i].stats);
                }
                engine.shutdown();
            }
        }
    }

    /// Intra-request block threading composes with serving: an engine
    /// over a `threads(2)` blocked session still matches the serial
    /// single-threaded oracle bitwise.
    #[test]
    fn engine_workers_compose_with_session_threads(
        c1 in 1usize..4,
        seed in 0u64..1000,
    ) {
        let net = random_net(c1, 2, true);
        let inputs = request_mix(seed ^ 0x7EAD);
        let oracle = session(&net, Backend::Blocked, PadMode::Zero, seed, 1);
        let engine = session(&net, Backend::Blocked, PadMode::Zero, seed, 2)
            .into_engine(ServeConfig { workers: 2, queue_depth: 4, max_batch: 4, ..ServeConfig::default() })
            .expect("engine builds");
        let got = engine.run_batch(inputs.clone()).expect("run_batch");
        for (i, (g, w)) in got.iter().zip(&inputs).enumerate() {
            let want = oracle.run(w).expect("oracle run");
            prop_assert_eq!(
                g.output.data(), want.output.data(),
                "req {}: threaded engine diverged from serial oracle", i
            );
            prop_assert_eq!(g.stats, want.stats, "req {}: stats diverged", i);
        }
    }
}
