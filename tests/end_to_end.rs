//! Cross-crate integration tests: the Session compiler, block convolution,
//! models, quant and accelerator models working together.

use bconv_core::analysis::boundary_error;
use bconv_core::blocking::{BlockGrid, BlockingPattern};
use bconv_core::BlockConv2d;
use bconv_graph::{Graph, LowerOptions, Planner, PlannerOptions, Segment};
use bconv_models::analysis::{conv_spatial, feature_map_series, plan_for};
use bconv_models::builder::{conv, maxpool, NetBuilder};
use bconv_models::vgg::vgg16;
use bconv_models::ActShape;
use bconv_quant::qconv::QConv2d;
use bconv_quant::QParams;
use bconv_tensor::conv::{Conv2d, ConvGeom};
use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};
use bconv_tensor::pad::PadMode;

/// A 16×16 three-conv descriptor (the paper's Figure 2(b) motif).
fn three_conv_net() -> bconv_models::Network {
    let mut b = NetBuilder::new("fig2b", ActShape { c: 3, h: 16, w: 16 });
    b.push("conv1", conv(3, 1, 1, 3, 8));
    b.push("conv2", conv(3, 1, 1, 8, 8));
    b.push("conv3", conv(3, 1, 1, 8, 4));
    b.build()
}

#[test]
fn figure2b_three_layer_fusion_is_exact_and_transfer_free() {
    // The motivating example: three consecutive conv layers (with ReLUs)
    // compile into ONE fusion group whose fused execution is identical to
    // layer-wise execution, with input+output-only off-chip traffic.
    let graph =
        Graph::lower(&three_conv_net(), &LowerOptions { seed: 1, relu_after_conv: true }).unwrap();
    let plan = Planner::new(PlannerOptions::default()).plan(&graph).unwrap();
    assert_eq!(plan.segments().len(), 1, "{}", plan.describe(&graph));
    let Segment::Fused { chain, nodes, .. } = &plan.segments()[0] else {
        panic!("expected a fused segment");
    };
    assert_eq!(nodes.len(), graph.nodes().len());

    let input = uniform_tensor([1, 3, 16, 16], -1.0, 1.0, &mut seeded_rng(2));
    let (fused, fs) = chain.run_fused(&input).unwrap();
    let (layerwise, ls) = chain.run_layerwise(&input).unwrap();
    assert!(fused.approx_eq(&layerwise, 1e-5).unwrap());
    assert_eq!(fs.offchip_elems, input.shape().numel() + fused.shape().numel());
    assert!(ls.offchip_elems > 3 * fs.offchip_elems);
}

#[test]
fn vgg16_blocking_plan_composes_models_and_core() {
    // Architecture descriptors feed the core planner: VGG-16 under F28
    // reproduces Table I's 76.92% blocking ratio.
    let net = vgg16(224);
    let plan = plan_for(&net, BlockingPattern::fixed(28)).unwrap();
    assert!((plan.blocking_ratio() * 100.0 - 76.92).abs() < 0.01);
    // All conv resolutions from the descriptor are valid grids for F28.
    for layer in conv_spatial(&net).unwrap() {
        if layer.h >= 28 {
            assert!(BlockGrid::from_pattern(layer.h, layer.w, BlockingPattern::fixed(28)).is_ok());
        }
    }
}

#[test]
fn quantized_block_convolution_stays_accurate() {
    // Block convolution composed with 8-bit integer execution: per-block
    // quantized convolution tracks the float block convolution.
    let mut rng = seeded_rng(3);
    let conv = he_conv2d(4, 4, ConvGeom::same(3), 1, &mut rng).unwrap();
    let input = uniform_tensor([1, 4, 16, 16], -1.0, 1.0, &mut rng);
    let bconv = BlockConv2d::from_pattern(
        conv.clone(),
        16,
        16,
        BlockingPattern::hierarchical(2),
        PadMode::Zero,
    )
    .unwrap();
    let float_out = bconv.forward(&input).unwrap();

    // Quantized execution of the same blocked computation, block by block.
    let qconv = QConv2d::from_conv(&conv, 8).unwrap();
    let act = QParams::from_abs_max(1.0, 8);
    let grid = bconv.grid().clone();
    let mut q_out = bconv_tensor::Tensor::zeros(float_out.shape());
    for row in 0..grid.num_rows() {
        for col in 0..grid.num_cols() {
            let b = grid.block(row, col);
            let block = input.crop(b.h0, b.w0, b.bh, b.bw).unwrap();
            let out = qconv.forward(&block, act, PadMode::Zero).unwrap();
            q_out.paste(&out, b.h0, b.w0).unwrap();
        }
    }
    let err = float_out.max_abs_diff(&q_out).unwrap();
    let mag = float_out.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    assert!(err / mag < 0.1, "relative error {}", err / mag);
}

#[test]
fn feature_map_analysis_matches_direct_computation() {
    // models::analysis agrees with a hand computation for VGG-16 layer 1.
    let series = feature_map_series(&vgg16(224), 16).unwrap();
    let direct = (64 * 224 * 224 * 16) as f64 / 1e6;
    assert!((series[0].mbits - direct).abs() < 1e-9);
}

#[test]
fn planner_fuses_across_a_pooling_boundary() {
    // Fixed blocking through conv -> pool -> conv: the planner carries the
    // grid across the pooling downscale, and the fused schedule matches
    // the layer-wise one exactly (Figure 10's scenario, now compiled
    // rather than hand-assembled).
    let mut b = NetBuilder::new("two-stage", ActShape { c: 2, h: 16, w: 16 });
    b.push("conv1", conv(3, 1, 1, 2, 4));
    b.push("pool1", maxpool(2, 2, 0));
    b.push("conv2", conv(3, 1, 1, 4, 2));
    let net = b.build();
    let graph = Graph::lower(&net, &LowerOptions { seed: 5, relu_after_conv: false }).unwrap();
    let plan = Planner::new(PlannerOptions {
        pattern: BlockingPattern::fixed(8),
        ..PlannerOptions::default()
    })
    .plan(&graph)
    .unwrap();
    assert_eq!(plan.fusion_groups(), 1, "{}", plan.describe(&graph));
    let Segment::Fused { chain, .. } = &plan.segments()[0] else {
        panic!("expected fused segment");
    };
    assert_eq!(chain.len(), 3);
    let input = uniform_tensor([1, 2, 16, 16], -1.0, 1.0, &mut seeded_rng(6));
    let (fused, _) = chain.run_fused(&input).unwrap();
    let (layerwise, _) = chain.run_layerwise(&input).unwrap();
    assert!(fused.approx_eq(&layerwise, 1e-5).unwrap());
    assert_eq!(fused.shape().dims(), [1, 2, 8, 8]);
}

#[test]
fn boundary_error_shrinks_with_block_size() {
    // The fraction of perturbed pixels scales with boundary length:
    // doubling block size roughly halves it.
    let mut rng = seeded_rng(7);
    let conv = he_conv2d(1, 1, ConvGeom::same(3), 1, &mut rng).unwrap();
    let input = uniform_tensor([1, 1, 64, 64], -1.0, 1.0, &mut rng);
    let coarse = BlockGrid::from_pattern(64, 64, BlockingPattern::fixed(32)).unwrap();
    let fine = BlockGrid::from_pattern(64, 64, BlockingPattern::fixed(8)).unwrap();
    let e_coarse = boundary_error(&conv, &coarse, PadMode::Zero, &input).unwrap();
    let e_fine = boundary_error(&conv, &fine, PadMode::Zero, &input).unwrap();
    assert!(e_fine.frac_perturbed > 2.0 * e_coarse.frac_perturbed);
    assert!(e_coarse.interior_max_abs < 1e-5);
    assert!(e_fine.interior_max_abs < 1e-5);
}

#[test]
fn identity_conv_is_invariant_to_blocking() {
    // An identity kernel never reads beyond the centre tap, so block
    // convolution is exact for it under every pattern and padding mode.
    let conv = Conv2d::identity_like(2, 2, ConvGeom::same(3)).unwrap();
    let mut rng = seeded_rng(9);
    let input = uniform_tensor([1, 2, 12, 12], -1.0, 1.0, &mut rng);
    for pattern in [
        BlockingPattern::hierarchical(2),
        BlockingPattern::fixed(5),
        BlockingPattern::Hierarchical { gh: 1, gw: 4 },
    ] {
        for mode in PadMode::ALL {
            let bconv = BlockConv2d::from_pattern(conv.clone(), 12, 12, pattern, mode).unwrap();
            let out = bconv.forward(&input).unwrap();
            assert!(out.approx_eq(&input, 1e-6).unwrap(), "{pattern} {mode:?}");
        }
    }
}
