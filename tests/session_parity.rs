//! Session-level parity between the two executor backends.
//!
//! The contract under test (paper §II-C, §III):
//!
//! * fused/blocked scheduling with a single-block grid is *numerically
//!   identical* to dense layer-wise execution — fusion changes the
//!   schedule, not the mathematics;
//! * under real blocking only pixels whose receptive field crosses a block
//!   boundary may differ, so block interiors stay exact and overall error
//!   is bounded;
//! * the fused schedule strictly reduces off-chip traffic.

use bconv_core::plan::NetworkPlan;
use bconv_core::BlockingPattern;
use bconv_graph::{Backend, Session};
use bconv_models::small::{resnet18_small, vdsr_small, vgg16_small};
use bconv_models::Network;
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::Tensor;

fn input_for(net: &Network, seed: u64) -> Tensor {
    let s = net.input;
    uniform_tensor([1, s.c, s.h, s.w], -1.0, 1.0, &mut seeded_rng(seed))
}

fn run_both(net: &Network, pattern: BlockingPattern, seed: u64) -> (Tensor, Tensor, usize, usize) {
    let input = input_for(net, seed ^ 0xABCD);
    let blocked = Session::builder()
        .network(net.clone())
        .pattern(pattern)
        .seed(seed)
        .backend(Backend::Blocked)
        .build()
        .unwrap();
    let reference = Session::builder()
        .network(net.clone())
        .pattern(pattern)
        .seed(seed)
        .backend(Backend::Reference)
        .build()
        .unwrap();
    let br = blocked.run(&input).unwrap();
    let rr = reference.run(&input).unwrap();
    assert_eq!(br.output.shape(), rr.output.shape());
    (br.output, rr.output, blocked.plan().fusion_groups(), br.stats.offchip_elems)
}

/// Relative max-abs error between two tensors.
fn rel_err(a: &Tensor, b: &Tensor) -> f32 {
    let mag = b.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
    a.max_abs_diff(b).unwrap() / mag
}

#[test]
fn single_block_fusion_is_exact_on_all_three_networks() {
    // H1x1 keeps the fused, per-block schedule (fusion groups exist!) but
    // the one block covers the whole map, so blocked == reference exactly.
    for (name, net) in
        [("vgg", vgg16_small(32)), ("resnet", resnet18_small(32)), ("vdsr", vdsr_small(24, 4, 8))]
    {
        let (blocked, reference, groups, _) = run_both(&net, BlockingPattern::hierarchical(1), 7);
        assert!(groups > 0, "{name}: fused schedule must actually engage");
        let err = rel_err(&blocked, &reference);
        assert!(err < 1e-5, "{name}: single-block fusion diverged, rel err {err}");
    }
}

#[test]
fn resolution_rule_blocking_keeps_error_bounded_on_classifiers() {
    // Under the paper's resolution rule (block the high-resolution layers;
    // F16 on these 32px inputs mirrors Table I's F28-on-224 regime) the
    // boundary perturbation of an untrained network stays moderate even at
    // the logits. The bound is an order-of-magnitude sanity check on a
    // fixed seed (observed ~0.03–0.27 across weight draws), not a tight
    // statistical claim — blocking everything instead (H2x2 end-to-end)
    // pushes this past 0.7.
    for (name, net, bound) in [("vgg", vgg16_small(32), 0.5), ("resnet", resnet18_small(32), 0.5)] {
        let (blocked, reference, groups, _) = run_both(&net, BlockingPattern::fixed(16), 11);
        assert!(groups > 0, "{name}: expected fusion groups under F16");
        let err = rel_err(&blocked, &reference);
        println!("{name}: F16 relative boundary error {err}");
        assert!(err < bound, "{name}: boundary perturbation out of bounds, rel err {err}");
        assert!(err > 0.0, "{name}: blocking should perturb boundary pixels");
    }
}

#[test]
fn vdsr_blocking_error_is_boundary_localized() {
    // End-to-end H2x2 on VDSR: pixels may deviate near the internal cut
    // lines, but the perturbed set is confined to the boundary bands
    // (within conv-depth pixels of a cut), i.e. error never spreads into
    // block interiors.
    let depth = 4usize;
    let res = 24usize;
    let net = vdsr_small(res, depth, 8);
    let (blocked, reference, groups, _) = run_both(&net, BlockingPattern::hierarchical(2), 11);
    assert!(groups > 0);
    let perturbed = blocked
        .data()
        .iter()
        .zip(reference.data())
        .filter(|(a, b)| (**a - **b).abs() > 1e-4)
        .count();
    let frac = perturbed as f64 / (res * res) as f64;
    // Band of `depth` pixels on each side of the cut line per axis: the
    // unperturbed core is ((res - 2*depth)/res)^2 of the map.
    let band_bound = 1.0 - ((res - 2 * depth) as f64 / res as f64).powi(2) + 0.02;
    println!("vdsr: {:.1}% pixels perturbed (bound {:.1}%)", frac * 100.0, band_bound * 100.0);
    assert!(frac > 0.0, "blocking should perturb boundary pixels");
    assert!(frac < band_bound, "perturbation escaped the boundary bands: {frac}");
}

#[test]
fn vdsr_block_interiors_are_exact_under_h2() {
    // Hierarchical blocking severs the map into independent sub-networks;
    // after d conv layers (3x3), perturbation reaches at most d pixels from
    // each internal cut line. Pixels deeper than that are bit-exact.
    let depth = 4usize;
    let res = 24usize;
    let net = vdsr_small(res, depth, 8);
    let input = input_for(&net, 3);
    let mk = |backend| {
        Session::builder()
            .network(net.clone())
            .pattern(BlockingPattern::hierarchical(2))
            .seed(5)
            .backend(backend)
            .build()
            .unwrap()
    };
    let blocked = mk(Backend::Blocked).run(&input).unwrap().output;
    let reference = mk(Backend::Reference).run(&input).unwrap().output;
    let cut = res / 2; // the internal H2 cut line
    let margin = depth; // k/2 = 1 per conv layer
    let mut checked = 0usize;
    for h in 0..res {
        for w in 0..res {
            let dh = h.abs_diff(cut).min(h.abs_diff(cut.saturating_sub(1)));
            let dw = w.abs_diff(cut).min(w.abs_diff(cut.saturating_sub(1)));
            if dh < margin || dw < margin {
                continue; // within reach of a cut line
            }
            let d = (blocked.at(0, 0, h, w) - reference.at(0, 0, h, w)).abs();
            assert!(d < 1e-4, "interior pixel ({h},{w}) differs by {d}");
            checked += 1;
        }
    }
    assert!(checked > res * res / 3, "interior region unexpectedly small");
}

#[test]
fn fused_offchip_traffic_strictly_decreases() {
    for (name, net, pattern) in [
        ("vgg-h2", vgg16_small(32), BlockingPattern::hierarchical(2)),
        ("vgg-h1", vgg16_small(32), BlockingPattern::hierarchical(1)),
        ("resnet-h2", resnet18_small(32), BlockingPattern::hierarchical(2)),
        ("vdsr-h2", vdsr_small(24, 4, 8), BlockingPattern::hierarchical(2)),
    ] {
        let input = input_for(&net, 17);
        let mk = |backend| {
            Session::builder()
                .network(net.clone())
                .pattern(pattern)
                .seed(23)
                .backend(backend)
                .build()
                .unwrap()
        };
        let fused = mk(Backend::Blocked).run(&input).unwrap().stats;
        let layerwise = mk(Backend::Reference).run(&input).unwrap().stats;
        println!(
            "{name}: off-chip fused {} vs layerwise {} elems",
            fused.offchip_elems, layerwise.offchip_elems
        );
        assert!(
            fused.offchip_elems < layerwise.offchip_elems,
            "{name}: fused {} !< layerwise {}",
            fused.offchip_elems,
            layerwise.offchip_elems
        );
    }
}

#[test]
fn blocking_depth_schedule_flows_through_session() {
    // The VDSR Table-IV schedule: depth-2 blocking leaves every third conv
    // a whole-map fusion point, trading traffic for information fusion.
    let net = vdsr_small(24, 6, 8);
    let input = input_for(&net, 29);
    let mk = |plan: NetworkPlan| {
        Session::builder()
            .network(net.clone())
            .pattern(BlockingPattern::hierarchical(2))
            .plan(plan)
            .seed(31)
            .build()
            .unwrap()
    };
    let end_to_end =
        mk(NetworkPlan::by_blocking_depth(6, BlockingPattern::hierarchical(2), usize::MAX));
    let depth2 = mk(NetworkPlan::by_blocking_depth(6, BlockingPattern::hierarchical(2), 2));
    assert_eq!(end_to_end.plan().fusion_groups(), 1);
    assert_eq!(depth2.plan().fusion_groups(), 2);
    let e2e_stats = end_to_end.run(&input).unwrap().stats;
    let d2_stats = depth2.run(&input).unwrap().stats;
    // More fusion points => more off-chip transfers.
    assert!(e2e_stats.offchip_elems < d2_stats.offchip_elems);
}

#[test]
fn on_chip_budget_is_respected_by_the_compiled_plan() {
    let net = vdsr_small(24, 6, 8);
    let budget = 12 * 12 * 8 + 12 * 12 * 2;
    let tight = Session::builder()
        .network(net.clone())
        .pattern(BlockingPattern::hierarchical(2))
        .on_chip_budget(budget)
        .seed(37)
        .build()
        .unwrap();
    let free = Session::builder()
        .network(net)
        .pattern(BlockingPattern::hierarchical(2))
        .seed(37)
        .build()
        .unwrap();
    let input = uniform_tensor([1, 1, 24, 24], -1.0, 1.0, &mut seeded_rng(41));
    let tr = tight.run(&input).unwrap();
    let fr = free.run(&input).unwrap();
    // The budget governs fused-group block buffers: every fused segment of
    // the tight plan must fit, so plans get shorter groups / more segments.
    assert!(tight.plan().fusion_groups() >= free.plan().fusion_groups());
    assert!(tr.segments > fr.segments, "budget must cut fusion groups");
    // Identical numerics regardless of the fusion schedule chosen.
    assert!(tr.output.approx_eq(&fr.output, 1e-4).unwrap());
}
