//! Allocation gate: proves the zero-alloc hot-path claim that
//! `bconv-analyze`'s L1 lint enforces statically, by *counting real
//! allocations* with an instrumented `#[global_allocator]`.
//!
//! Two tiers of guarantee, both measured at steady state (after warm-up):
//!
//! * **Strict zero** — `Session::run_with(&input, &mut scratch)` performs
//!   *zero* heap allocations per request once the caller recycles the
//!   output tensor back into the scratch (`ExecScratch::recycle`). This
//!   holds for the Blocked and Quantized backends on a single thread.
//! * **Bounded** — [`ServeEngine`] inherently allocates per request: the
//!   output tensor leaves the engine in its `RunReport`, and the ticket
//!   table / batch bookkeeping churn a few nodes (all bounded by
//!   `max_batch`, see `analyze/allowlist.txt`). The gate asserts a hard
//!   per-request ceiling on both allocation count and bytes so a
//!   regression (say, a per-request buffer clone) fails loudly.
//!
//! The counting allocator is process-global, so every test serializes on
//! one mutex and takes its before/after snapshots inside the lock.
//!
//! This file needs `unsafe` for the `GlobalAlloc` impl — which is exactly
//! why the workspace bans `unsafe` via per-crate `#![forbid(unsafe_code)]`
//! on library targets instead of a workspace-level lint (a `[lints]` table
//! would cover this test target too).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bconv_graph::{Backend, ExecScratch, Router, ServeConfig, Session};
use bconv_models::small::vgg16_small;
use bconv_models::Network;
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::kernel::KernelPolicy;
use bconv_tensor::Tensor;

/// Wraps the system allocator, counting allocations and bytes. `dealloc`
/// is deliberately not subtracted: the gate cares about allocation
/// *events*, and a path that allocates-then-frees per request is exactly
/// what it must catch.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

// SAFETY: defers entirely to `System`; the counters are lock-free atomics
// and touch no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing realloc is an allocation event for gating purposes;
        // only count the growth so byte budgets stay meaningful.
        if new_size > layout.size() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size - layout.size(), Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Serializes tests: the counters are process-global, so concurrent tests
/// would attribute each other's allocations.
static GATE: Mutex<()> = Mutex::new(());

fn snapshot() -> (usize, usize) {
    (ALLOCS.load(Ordering::SeqCst), BYTES.load(Ordering::SeqCst))
}

fn delta(before: (usize, usize)) -> (usize, usize) {
    let (a, b) = snapshot();
    (a - before.0, b - before.1)
}

fn net() -> Network {
    vgg16_small(32)
}

fn input(seed: u64) -> Tensor {
    let s = net().input;
    uniform_tensor([1, s.c, s.h, s.w], -1.0, 1.0, &mut seeded_rng(seed))
}

fn session(backend: Backend, threads: usize) -> Session {
    Session::builder()
        .network(net())
        .backend(backend)
        .seed(2018)
        .threads(threads)
        .build()
        .expect("session builds")
}

const QUANT: Backend = Backend::Quantized { weight_bits: 8, act_bits: 8 };

/// Strict tier: warm `run_with` + `recycle` is allocation-free — not
/// "few allocations", literally zero.
fn assert_zero_steady_state(backend: Backend) {
    let _lock = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let session = session(backend, 1);
    let input = input(7);
    let mut scratch = ExecScratch::new();

    // Warm-up: grow every buffer to its steady-state size. The first run
    // allocates the whole value table; the second proves the pool cycles;
    // a couple more flush any lazily-grown kernel scratch.
    for _ in 0..4 {
        let report = session.run_with(&input, &mut scratch).expect("warm-up run");
        scratch.recycle(report.output);
    }

    let before = snapshot();
    let mut checksum = 0.0f32;
    for _ in 0..8 {
        let report = session.run_with(&input, &mut scratch).expect("measured run");
        checksum += report.output.data()[0];
        scratch.recycle(report.output);
    }
    let (allocs, bytes) = delta(before);
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "steady-state run_with must not allocate ({backend:?}): \
         {allocs} allocation(s), {bytes} byte(s) across 8 requests"
    );
    assert!(checksum.is_finite());
}

#[test]
fn run_with_is_allocation_free_blocked() {
    assert_zero_steady_state(Backend::Blocked);
}

#[test]
fn run_with_is_allocation_free_quantized() {
    assert_zero_steady_state(QUANT);
}

/// The integer im2col+GEMM backend holds the strict-zero bar too: the
/// i16 patch matrix and quantized-activation buffers live in the session
/// scratch and the packed weight panels are built at compile time, so
/// forcing every quantized layer onto the GEMM kernel adds no warm-path
/// allocations.
#[test]
fn run_with_is_allocation_free_quantized_gemm_kernel() {
    let _lock = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let session = Session::builder()
        .network(net())
        .backend(QUANT)
        .kernel(KernelPolicy::Im2colGemm)
        .seed(2018)
        .threads(1)
        .build()
        .expect("session builds");
    assert!(
        session.conv_kernels().iter().all(|(_, k)| *k == "im2col-gemm"),
        "forcing the policy must route every conv through the integer GEMM: {:?}",
        session.conv_kernels()
    );
    let input = input(7);
    let mut scratch = ExecScratch::new();
    for _ in 0..4 {
        let report = session.run_with(&input, &mut scratch).expect("warm-up run");
        scratch.recycle(report.output);
    }
    let before = snapshot();
    let mut checksum = 0.0f32;
    for _ in 0..8 {
        let report = session.run_with(&input, &mut scratch).expect("measured run");
        checksum += report.output.data()[0];
        scratch.recycle(report.output);
    }
    let (allocs, bytes) = delta(before);
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "steady-state quantized-GEMM run_with must not allocate: \
         {allocs} allocation(s), {bytes} byte(s) across 8 requests"
    );
    assert!(checksum.is_finite());
}

/// Bounded tier: a serve request may allocate its departing output tensor
/// plus a constant amount of ticket/batch bookkeeping — and nothing
/// proportional to the network.
fn assert_bounded_serve(backend: Backend, workers: usize) {
    let _lock = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let engine = session(backend, 1)
        .into_engine(ServeConfig {
            workers,
            queue_depth: 64,
            max_batch: 4,
            ..ServeConfig::default()
        })
        .expect("engine builds");
    // Inputs are cloned *outside* the measured window: submit() takes the
    // tensor by value, so the gate would otherwise charge the request for
    // the caller's own copy.
    let inputs: Vec<Tensor> = (0..workers * 4).map(|i| input(i as u64)).collect();
    let output_bytes = {
        // Warm-up: every worker grows its scratch to steady state. Rounds
        // of exactly `workers` in-flight requests force the engine to
        // spread work across all workers (each blocks on its own ticket).
        let mut out_bytes = 0usize;
        for _ in 0..6 {
            for report in engine.run_batch(inputs.clone()).expect("warm-up batch") {
                out_bytes = size_of_val(report.output.data());
            }
        }
        out_bytes
    };

    let requests = inputs.len();
    let queue: Vec<Tensor> = inputs.to_vec();

    let before = snapshot();
    for input in queue {
        let ticket = engine.submit(input).expect("submit");
        let report = engine.wait(ticket).expect("wait");
        assert_eq!(report.output.shape().dims(), [1, 10, 1, 1]);
    }
    let (allocs, bytes) = delta(before);
    let (per_alloc, per_bytes) = (allocs / requests, bytes / requests);

    // Ceilings, not estimates: a request funds its output tensor, its
    // boxed job + ticket-table node, and a slice of the wave's batch
    // bookkeeping. 64 allocation events / (output + 8 KiB) per request is
    // several times the observed steady state yet far below any
    // per-request buffer clone (a single feature map is megabytes).
    assert!(
        per_alloc <= 64,
        "serve {backend:?} x{workers}: {allocs} allocation(s) across {requests} requests \
         ({per_alloc}/request, ceiling 64)"
    );
    assert!(
        per_bytes <= output_bytes + 8 * 1024,
        "serve {backend:?} x{workers}: {bytes} byte(s) across {requests} requests \
         ({per_bytes}/request, ceiling {} = output + 8 KiB)",
        output_bytes + 8 * 1024
    );
}

#[test]
fn serve_is_alloc_bounded_blocked_1_worker() {
    assert_bounded_serve(Backend::Blocked, 1);
}

#[test]
fn serve_is_alloc_bounded_blocked_2_workers() {
    assert_bounded_serve(Backend::Blocked, 2);
}

#[test]
fn serve_is_alloc_bounded_blocked_4_workers() {
    assert_bounded_serve(Backend::Blocked, 4);
}

#[test]
fn serve_is_alloc_bounded_quantized_2_workers() {
    assert_bounded_serve(QUANT, 2);
}

/// A router in front of the engines holds the same bounded-tier ceiling:
/// shard picking reads one atomic gauge per replica and the returned
/// ticket is a plain (shard, ticket) pair, so fronting N replicas must
/// add no per-request allocation beyond what one engine already funds.
#[test]
fn router_fronted_serve_is_alloc_bounded() {
    let _lock = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let router: Router = session(Backend::Blocked, 1)
        .into_router(
            2,
            ServeConfig { workers: 1, queue_depth: 64, max_batch: 4, ..ServeConfig::default() },
        )
        .expect("router builds");
    let inputs: Vec<Tensor> = (0..8).map(|i| input(i as u64)).collect();
    let output_bytes = {
        let mut out_bytes = 0usize;
        for _ in 0..6 {
            for report in router.run_batch(inputs.clone()).expect("warm-up batch") {
                out_bytes = size_of_val(report.output.data());
            }
        }
        out_bytes
    };

    let requests = inputs.len();
    let queue: Vec<Tensor> = inputs.to_vec();

    let before = snapshot();
    for input in queue {
        let ticket = router.submit(input).expect("submit");
        let report = router.wait(ticket).expect("wait");
        assert_eq!(report.output.shape().dims(), [1, 10, 1, 1]);
    }
    let (allocs, bytes) = delta(before);
    let (per_alloc, per_bytes) = (allocs / requests, bytes / requests);
    assert!(
        per_alloc <= 64,
        "routed serve: {allocs} allocation(s) across {requests} requests \
         ({per_alloc}/request, ceiling 64)"
    );
    assert!(
        per_bytes <= output_bytes + 8 * 1024,
        "routed serve: {bytes} byte(s) across {requests} requests \
         ({per_bytes}/request, ceiling {} = output + 8 KiB)",
        output_bytes + 8 * 1024
    );
}
