//! Serving-tier scheduling and sharding determinism: priorities,
//! deadlines, and the multi-replica [`Router`] are *schedule* choices —
//! they decide when and where a request runs, never what it computes.
//!
//! Three contracts from ISSUE 9:
//! * priority/deadline scheduling never changes outputs (bitwise vs a
//!   serial `Session::run` oracle, per request, any worker count);
//! * an expired deadline sheds with the typed
//!   [`TensorError::DeadlineExpired`], visible in [`ServeMetrics::shed`];
//! * a router's N replicas share ONE compiled model — graph, plan,
//!   weights, and calibration all `Arc`-shared (asserted via
//!   `Arc::ptr_eq` through [`ServeEngine::shares_model_with`]), with
//!   exactly one quantization calibration pass counted for the whole
//!   replica set — and route identically to solo runs.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use bconv_graph::quantize::calibration_passes;
use bconv_graph::{Backend, ServeConfig, Session, SessionBuilder, SubmitOptions};
use bconv_models::builder::{conv, maxpool, NetBuilder};
use bconv_models::{ActShape, Network};
use bconv_tensor::init::{seeded_rng, uniform_tensor};
use bconv_tensor::{Tensor, TensorError};
use proptest::prelude::*;

/// Serializes the tests in this binary: the calibration-pass counter is
/// process-global, so the test that asserts an exact delta must not race
/// other tests that build quantized sessions.
static GATE: Mutex<()> = Mutex::new(());

fn random_net(c1: usize, with_pool: bool) -> Network {
    let mut b = NetBuilder::new("serve_sched_prop", ActShape { c: 2, h: 16, w: 16 });
    b.push("conv1", conv(3, 1, 1, 2, c1));
    b.push("conv2", conv(3, 1, 1, c1, 2));
    if with_pool {
        b.push("pool", maxpool(2, 2, 0));
    }
    b.build()
}

fn session(net: &Network, backend: Backend, seed: u64) -> Session {
    let b: SessionBuilder = Session::builder()
        .network(net.clone())
        .backend(backend)
        .seed(seed)
        .threads(1)
        .relu_after_conv(true);
    b.build().expect("session builds")
}

fn request_mix(seed: u64) -> Vec<Tensor> {
    [1usize, 2, 1, 3, 1]
        .iter()
        .enumerate()
        .map(|(i, &n)| uniform_tensor([n, 2, 16, 16], -1.0, 1.0, &mut seeded_rng(seed + i as u64)))
        .collect()
}

const BACKENDS: [Backend; 3] =
    [Backend::Reference, Backend::Blocked, Backend::Quantized { weight_bits: 8, act_bits: 8 }];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random priority/deadline mixes reorder execution freely but every
    /// request's output and stats stay bitwise-identical to the serial
    /// oracle, at 1 and 4 workers.
    #[test]
    fn priorities_and_deadlines_never_change_outputs(
        c1 in 1usize..4,
        pool_idx in 0usize..2,
        max_batch in 1usize..5,
        seed in 0u64..1000,
        prio_bits in 0u32..1024,
    ) {
        // Five 2-bit priority classes unpacked from one random word (the
        // vendored proptest shim has no collection strategies).
        let prios: Vec<u8> = (0..5).map(|i| ((prio_bits >> (2 * i)) & 3) as u8).collect();
        let _gate = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let net = random_net(c1, pool_idx == 1);
        let inputs = request_mix(seed ^ 0x51ED);
        // Generous deadlines: scheduling pressure without any shed (a
        // shed request has no output to compare).
        let deadline = Instant::now() + Duration::from_secs(3600);
        for backend in BACKENDS {
            let oracle = session(&net, backend, seed);
            let want: Vec<_> = inputs.iter().map(|t| oracle.run(t).expect("oracle")).collect();
            for workers in [1usize, 4] {
                let engine = session(&net, backend, seed)
                    .into_engine(ServeConfig { workers, queue_depth: 4, max_batch, ..ServeConfig::default() })
                    .expect("engine builds");
                let tickets: Vec<_> = inputs
                    .iter()
                    .zip(&prios)
                    .map(|(t, &priority)| {
                        let opts = SubmitOptions { priority, deadline: Some(deadline) };
                        engine.submit_with(t.clone(), opts).expect("submit_with")
                    })
                    .collect();
                for (i, &t) in tickets.iter().enumerate() {
                    let got = engine.wait(t).expect("wait");
                    prop_assert_eq!(
                        got.output.data(), want[i].output.data(),
                        "{:?} workers={} req={} prio={}: prioritised output diverged",
                        backend, workers, i, prios[i]
                    );
                    prop_assert_eq!(got.stats, want[i].stats);
                }
                engine.shutdown();
            }
        }
    }

    /// The router is bitwise-invisible: spreading a request mix over 1-3
    /// replicas (mixed poll/wait redemption) equals solo session runs.
    #[test]
    fn router_matches_solo_runs_bitwise(
        c1 in 1usize..4,
        replicas in 1usize..4,
        seed in 0u64..1000,
    ) {
        let _gate = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let net = random_net(c1, true);
        let inputs = request_mix(seed ^ 0xB0);
        let oracle = session(&net, Backend::Blocked, seed);
        let want: Vec<_> = inputs.iter().map(|t| oracle.run(t).expect("oracle")).collect();
        let router = session(&net, Backend::Blocked, seed)
            .into_router(replicas, ServeConfig { workers: 1, queue_depth: 4, max_batch: 3, ..ServeConfig::default() })
            .expect("router builds");
        let tickets: Vec<_> =
            inputs.iter().map(|t| router.submit(t.clone()).expect("submit")).collect();
        for (i, &t) in tickets.iter().enumerate().rev() {
            // Redeem by polling (spin) for even requests, blocking for odd:
            // both redemption paths must deliver the same bits.
            let got = if i % 2 == 0 {
                loop {
                    match router.poll(t).expect("poll") {
                        Some(report) => break report,
                        None => std::thread::yield_now(),
                    }
                }
            } else {
                router.wait(t).expect("wait")
            };
            prop_assert_eq!(
                got.output.data(), want[i].output.data(),
                "replicas={} req={}: routed output diverged", replicas, i
            );
            prop_assert_eq!(got.stats, want[i].stats);
        }
        router.shutdown();
    }
}

#[test]
fn router_shares_one_model_and_one_calibration_pass() {
    let _gate = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let net = random_net(3, true);
    let backend = Backend::Quantized { weight_bits: 8, act_bits: 8 };
    let before = calibration_passes();
    let base = session(&net, backend, 77);
    let oracle = base.fork();
    let router = base
        .into_router(
            4,
            ServeConfig { workers: 1, queue_depth: 4, max_batch: 2, ..ServeConfig::default() },
        )
        .expect("router builds");
    assert_eq!(
        calibration_passes() - before,
        1,
        "one session + fork + 4 replicas must calibrate exactly once"
    );
    // Every replica serves the same Arc'd graph and executor (weights,
    // plan, calibration): shares_model_with is Arc::ptr_eq on both.
    let engines = router.replicas();
    assert_eq!(engines.len(), 4);
    for (i, engine) in engines.iter().enumerate().skip(1) {
        assert!(
            engines[0].shares_model_with(engine),
            "replica {i} does not share the compiled model"
        );
    }
    // And the sharing is not cosmetic: routed outputs are bitwise equal
    // to the forked oracle's solo runs.
    let inputs = request_mix(0xCA11B);
    let reports = router.run_batch(inputs.clone()).expect("run_batch");
    for (i, (inp, got)) in inputs.iter().zip(&reports).enumerate() {
        let want = oracle.run(inp).expect("oracle");
        assert_eq!(got.output.data(), want.output.data(), "req {i} diverged across replicas");
        assert_eq!(got.stats, want.stats, "req {i} stats diverged");
    }
    let m = router.metrics();
    assert_eq!(m.completed, inputs.len() as u64);
    assert_eq!((m.failed, m.shed), (0, 0));
    router.shutdown();
}

#[test]
fn router_sheds_expired_requests_with_typed_error() {
    let _gate = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let net = random_net(2, false);
    let router = session(&net, Backend::Blocked, 9)
        .into_router(
            2,
            ServeConfig { workers: 1, queue_depth: 4, max_batch: 2, ..ServeConfig::default() },
        )
        .expect("router builds");
    let input = uniform_tensor([1, 2, 16, 16], -1.0, 1.0, &mut seeded_rng(0xDEAD));
    let opts = SubmitOptions { priority: 0, deadline: Some(Instant::now()) };
    let ticket = router.submit_with(input.clone(), opts).expect("submit_with");
    assert!(matches!(router.wait(ticket), Err(TensorError::DeadlineExpired)));
    assert_eq!(router.metrics().shed, 1, "the shed must surface in aggregated metrics");
    // The same input without a deadline still serves fine.
    let ok = router.submit(input).expect("submit");
    assert!(router.wait(ok).is_ok());
    router.shutdown();
}
